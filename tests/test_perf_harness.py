"""Perf harness: committed-baseline integrity (tier-1) + live run (perf).

The tier-1 part is cheap: it validates the schema of the committed
``benchmarks/results/BENCH_perf.json`` and pins the headline claim the
fused engine was merged on — the end-to-end CATE-HGN epoch speedup over
the legacy path.  The ``perf``-marked part actually executes the
harness (minutes); run it with ``pytest -m perf tests/test_perf_harness.py``.
"""

import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PERF = REPO_ROOT / "benchmarks" / "results" / "BENCH_perf.json"

FUSED_OPS = {"gather_matmul", "segment_softmax_fused",
             "segment_weighted_sum", "masked_softmax_combine"}


def test_committed_bench_perf_schema_and_headline():
    report = json.loads(BENCH_PERF.read_text())
    assert {case["op"] for case in report["ops"]} >= FUSED_OPS
    for case in report["ops"]:
        # Fusion must shrink the tape, never grow it.
        assert (case["fused_tape"]["tape_nodes"]
                <= case["legacy_tape"]["tape_nodes"]), case["op"]
        assert case["fused"]["mean_s"] > 0 and case["legacy"]["mean_s"] > 0
    for mode in ("fused", "legacy"):
        assert report["hgn_passes"][mode]["forward"]["mean_s"] > 0
        assert report["cate_epochs"][mode]["epoch_mean_s"] > 0
    # The acceptance headline: >=1.5x end-to-end CATE-HGN epoch speedup
    # vs the pre-change (legacy) measurement recorded in the same file.
    assert report["cate_epochs"]["epoch_speedup"] >= 1.5
    assert set(report["baseline_epochs"]) == {"R-GCN", "GAT", "HAN"}


def test_committed_bench_serve_section_and_headline():
    """Serving acceptance: a warm-cache single query is >=5x faster than
    the full grad-mode forward it replaces (recorded in the same file)."""
    report = json.loads(BENCH_PERF.read_text())
    sv = report["serve"]
    for key in ("grad_forward", "cold_single_query", "warm_single_query",
                "bulk"):
        assert sv[key]["mean_s"] > 0, key
    assert sv["bulk"]["papers_per_s"] > 0
    assert sv["num_papers"] > 0 and sv["load_and_freeze_s"] > 0
    assert sv["warm_speedup_vs_grad_forward"] >= 5.0
    # A cold miss only pays one micro-batched head application over the
    # frozen embeddings — it must also beat the full forward.
    assert sv["cold_speedup_vs_grad_forward"] >= 5.0


def test_committed_bench_serving_async_section():
    """Dynamic-batching acceptance on the committed loadtest report.

    Pins the tentpole claims without re-running the (slow) 1k-client
    loadtest: the asyncio runtime coalesced concurrent requests into
    real multi-request batches (mean batch size > 1), out-threw the
    threaded server on QPS, answered everything (histogram accounts for
    every request, zero client errors), and the latency fields are
    sane percentiles.
    """
    report = json.loads(BENCH_PERF.read_text())
    sa = report["serving_async"]
    assert sa["concurrency"] >= 64
    assert sa["total_requests"] == (sa["concurrency"]
                                    * sa["requests_per_client"])
    for side in ("async", "threaded"):
        res = sa[side]
        assert res["requests"] == sa["total_requests"], side
        assert res["errors"] == 0, side
        assert res["qps"] > 0, side
        assert 0 < res["p50_ms"] <= res["p99_ms"], side

    batching = sa["async"]["batching"]
    assert batching["mean_batch_size"] > 1.0
    assert batching["coalesce_ratio"] > 1.0
    assert batching["failed_batches"] == 0
    # Every measured request is in exactly one batch: the histogram's
    # weighted sum must equal the request count.
    weighted = sum(int(size) * count for size, count
                   in batching["batch_size_histogram"].items())
    assert weighted == sa["async"]["requests"]
    assert batching["batches"] == sum(
        batching["batch_size_histogram"].values())
    # The headline: batching beats thread-per-request on throughput.
    assert sa["async"]["qps"] > sa["threaded"]["qps"]
    assert sa["qps_speedup_vs_threaded"] == pytest.approx(
        sa["async"]["qps"] / sa["threaded"]["qps"])


def test_committed_bench_serving_fleet_section():
    """Fleet acceptance on the committed ``loadtest --fleet N`` report.

    Pins the robustness claims without re-running the loadtest: every
    phase (single-replica baseline, fleet steady state, failover with a
    mid-phase replica SIGKILL) answered every request with zero errors
    — the failover phase in particular proves the router's ring
    retries absorbed a replica death without surfacing a single 5xx —
    the killed replica was restarted by the supervisor, and the
    latency/QPS fields are sane.
    """
    report = json.loads(BENCH_PERF.read_text())
    sf = report["serving_fleet"]
    assert sf["num_replicas"] >= 2
    assert sf["concurrency"] >= 64
    assert sf["total_requests"] == (sf["concurrency"]
                                    * sf["requests_per_client"])
    for phase in ("single_async", "fleet", "failover"):
        res = sf[phase]
        assert res["requests"] == sf["total_requests"], phase
        assert res["errors"] == 0, phase
        assert res["qps"] > 0, phase
        assert 0 < res["p50_ms"] <= res["p99_ms"], phase
    assert sf["failover"]["victim_restarts"] >= 1
    assert sf["failover"]["kill_after_s"] > 0
    assert sf["fleet_qps_vs_single_async"] == pytest.approx(
        sf["fleet"]["qps"] / sf["single_async"]["qps"])
    assert sf["failover_qps_fraction"] == pytest.approx(
        sf["failover"]["qps"] / sf["fleet"]["qps"])


def test_committed_bench_elastic_tcp_section():
    """Elastic-transport acceptance on the committed ``--section
    elastic_tcp`` report.

    Pins the DESIGN §18 claims without re-running the benchmark: at
    every measured worker count the socket transport replayed the
    shared-memory trajectory bit-for-bit with zero transport-level
    errors and no worker deaths, the per-step timings are sane, and the
    warm-standby takeover promoted without failing a single client
    request across the router kill.
    """
    report = json.loads(BENCH_PERF.read_text())
    et = report["elastic_tcp"]
    assert et["steps"] >= 2
    assert set(et["by_workers"]) == {str(k) for k in et["worker_counts"]}
    for count, entry in et["by_workers"].items():
        assert entry["fingerprint_match"] is True, count
        assert entry["transport_errors"] == 0, count
        assert entry["deaths"] == 0, count
        for transport in ("shm", "tcp"):
            timing = entry[transport]
            assert 0 < timing["step_mean_s"] <= timing["wall_s"], count
        rpc = entry["tcp"]["rpc"]
        assert rpc["requests"] > 0 and rpc["codec_errors"] == 0, count
        assert entry["tcp_overhead"] == pytest.approx(
            entry["tcp"]["step_mean_s"] / entry["shm"]["step_mean_s"])
    to = et["takeover"]
    assert to["promoted"] is True
    assert to["requests_failed"] == 0
    assert to["requests_total"] > 0
    assert to["membership_syncs"] > 0
    assert to["takeover_s"] is not None and to["takeover_s"] > 0
    assert to["blackout_s"] >= to["takeover_s"]


def test_committed_bench_sampling_section():
    """On-disk minibatch sampling acceptance: the committed report has
    papers/s at 100k AND 1M papers, sampled without loading the store
    into Python memory (tracemalloc peak ≪ store payload)."""
    report = json.loads(BENCH_PERF.read_text())
    sp = report["sampling"]
    assert sp["batch_size"] > 0 and sp["fanouts"] > 0 and sp["hops"] >= 1
    assert set(sp["scales"]) == {"100000", "1000000"}
    for scale, entry in sp["scales"].items():
        assert entry["num_papers"] == int(scale)
        assert entry["papers_per_s"] > 0 and entry["batches_per_s"] > 0
        assert entry["build_s"] > 0 and entry["store_edges"] > 0
        assert entry["python_peak_bytes"] < entry["store_bytes"], scale
    small = sp["scales"]["100000"]
    big = sp["scales"]["1000000"]
    # The store grows ~10x; the Python-side peak must not follow it —
    # only O(num_papers) label bookkeeping scales, never edges/features.
    assert big["store_bytes"] > 5 * small["store_bytes"]
    assert big["python_peak_bytes"] < big["store_bytes"] / 10
    # Throughput must not fall off a cliff at 10x scale (papers/s is
    # per-seed work, which neighbor sampling keeps ~constant).
    assert big["papers_per_s"] > small["papers_per_s"] / 4


def test_regression_gate_accepts_its_own_baseline():
    """check_regression with --report pointed at the baseline itself
    must pass (0 %% drift < 25 %% threshold), without re-measuring."""
    import subprocess
    import sys

    proc = subprocess.run(
        [sys.executable, str(REPO_ROOT / "benchmarks" / "perf" /
                             "check_regression.py"),
         "--report", str(BENCH_PERF)],
        capture_output=True, text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "OK" in proc.stdout


@pytest.mark.perf
def test_perf_harness_quick_run(tmp_path):
    """Execute the harness end-to-end in quick mode (minutes)."""
    import sys

    sys.path.insert(0, str(REPO_ROOT))
    from benchmarks.perf import run_all

    report = run_all(quick=True)
    assert report["cate_epochs"]["fused"]["epoch_mean_s"] > 0
    out = tmp_path / "BENCH_perf.json"
    out.write_text(json.dumps(report))
    assert json.loads(out.read_text())["bench"] == "BENCH_perf"


@pytest.mark.perf
def test_bench_sampling_small_scale():
    """Execute the sampling benchmark itself at a reduced scale (the
    100k/1M measurement is CLI-only: ``python -m benchmarks.perf
    --section sampling``)."""
    import sys

    sys.path.insert(0, str(REPO_ROOT))
    from benchmarks.perf import bench_sampling

    section = bench_sampling(scales=(30_000,), batches=3)
    entry = section["scales"]["30000"]
    assert entry["papers_per_s"] > 0
    assert entry["python_peak_bytes"] < entry["store_bytes"]
