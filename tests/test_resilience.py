"""Fault tolerance: atomic writes, snapshots, resume, divergence rollback.

The two headline guarantees pinned here (DESIGN §12):

1. **Bitwise resume** — kill training mid-run, resume from the checkpoint
   directory, and the final model state and predictions are ``==`` (not
   allclose) to an uninterrupted run's, for both the CATE-HGN trainer and
   the supervised-GNN baseline scaffold.
2. **Never half-load** — truncated / bit-flipped / torn snapshot files
   either fall back to the previous good snapshot or raise
   ``CheckpointCorruptError``; no loader ever returns partial state.
"""

import json
import warnings

import numpy as np
import pytest

from repro.baselines import RGCN
from repro.baselines.gnn_common import GNNTrainConfig
from repro.core.model import CATEHGNConfig
from repro.core.trainer import CATEHGN
from repro.nn import Linear
from repro.nn.optim import SGD, Adam
from repro.resilience import (
    CheckpointCorruptError,
    CrashInjected,
    SnapshotStore,
    atomic_write_bytes,
    atomic_write_text,
    content_digest,
    faults,
    file_sha256,
)
from repro.tensor import Tensor


def small_config(**overrides) -> CATEHGNConfig:
    params = dict(dim=8, num_layers=2, outer_iters=4, mini_iters=2,
                  center_iters=1, kappa=12, num_clusters=4, patience=10,
                  seed=0)
    params.update(overrides)
    return CATEHGNConfig(**params)


def states_equal(a, b) -> bool:
    return set(a) == set(b) and all(np.array_equal(a[k], b[k]) for k in a)


# ----------------------------------------------------------------------
# Atomic writes + digests
# ----------------------------------------------------------------------
class TestAtomic:
    def test_roundtrip_and_no_temp_left(self, tmp_path):
        target = tmp_path / "blob.bin"
        atomic_write_bytes(target, b"hello")
        assert target.read_bytes() == b"hello"
        atomic_write_text(target, "world")
        assert target.read_text() == "world"
        assert [p.name for p in tmp_path.iterdir()] == ["blob.bin"]

    def test_failure_leaves_target_intact(self, tmp_path):
        target = tmp_path / "blob.bin"
        atomic_write_bytes(target, b"old")
        with pytest.raises(CrashInjected):
            with faults.kill_before_replace():
                atomic_write_bytes(target, b"new")
        assert target.read_bytes() == b"old"
        assert [p.name for p in tmp_path.iterdir()] == ["blob.bin"]

    def test_content_digest_sensitive_to_everything(self):
        base = {"w": np.arange(6, dtype=np.float64).reshape(2, 3)}
        d0 = content_digest(base)
        assert d0 == content_digest(
            {"w": np.arange(6, dtype=np.float64).reshape(2, 3)}
        )
        assert d0 != content_digest({"v": base["w"]})  # name
        assert d0 != content_digest({"w": base["w"].reshape(3, 2)})  # shape
        assert d0 != content_digest({"w": base["w"].astype(np.float32)})
        mutated = base["w"].copy()
        mutated[0, 0] += 1
        assert d0 != content_digest({"w": mutated})  # value

    def test_file_sha256_matches_payload(self, tmp_path):
        f = tmp_path / "x"
        f.write_bytes(b"abc")
        import hashlib

        assert file_sha256(f) == hashlib.sha256(b"abc").hexdigest()


# ----------------------------------------------------------------------
# Snapshot store
# ----------------------------------------------------------------------
class TestSnapshotStore:
    def make_store(self, tmp_path, keep_last=3):
        store = SnapshotStore(tmp_path, keep_last=keep_last)
        rng = np.random.default_rng(0)
        for step in range(4):
            store.save(step, {"kind": "t", "note": step},
                       {"w": rng.normal(size=(3, 2)), "b": rng.normal(size=3)})
        return store

    def test_roundtrip_and_retention(self, tmp_path):
        store = self.make_store(tmp_path, keep_last=3)
        assert store.steps() == [1, 2, 3]  # step 0 pruned
        snap = store.load(2)
        assert snap.step == 2 and snap.meta["note"] == 2
        assert set(snap.arrays) == {"w", "b"}
        latest = store.load_latest()
        assert latest is not None and latest.step == 3

    def test_truncated_snapshot_falls_back(self, tmp_path):
        store = self.make_store(tmp_path)
        newest = store.path_for(3)
        payload = newest.read_bytes()
        newest.write_bytes(payload[: len(payload) // 2])
        with pytest.raises(CheckpointCorruptError):
            store.load(3)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            fallback = store.load_latest()
        assert fallback is not None and fallback.step == 2

    def test_bitflip_fails_checksum(self, tmp_path):
        store = self.make_store(tmp_path)
        newest = store.path_for(3)
        payload = bytearray(newest.read_bytes())
        payload[len(payload) // 2] ^= 0xFF
        newest.write_bytes(bytes(payload))
        with pytest.raises(CheckpointCorruptError):
            store.load(3)

    def test_kill_before_replace_keeps_previous(self, tmp_path):
        store = self.make_store(tmp_path)
        before = store.load_latest()
        with pytest.raises(CrashInjected):
            with faults.kill_before_replace():
                store.save(9, {"kind": "t"}, {"w": np.ones(2)})
        after = store.load_latest()
        assert after is not None and after.step == before.step
        assert states_equal(after.arrays, before.arrays)

    def test_torn_write_is_rejected_not_half_loaded(self, tmp_path):
        """truncate_after_write installs a corrupt file; load must refuse."""
        store = self.make_store(tmp_path)
        with faults.truncate_after_write(nbytes=128) as injector:
            store.save(9, {"kind": "t"}, {"w": np.ones((8, 8))})
        assert injector.fired() == 1
        with pytest.raises(CheckpointCorruptError):
            store.load(9)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            fallback = store.load_latest()
        assert fallback is not None and fallback.step == 3

    def test_keep_last_validation(self, tmp_path):
        with pytest.raises(ValueError):
            SnapshotStore(tmp_path, keep_last=0)


# ----------------------------------------------------------------------
# Optimizer state round-trips (the substrate of bitwise resume)
# ----------------------------------------------------------------------
class TestOptimizerState:
    def _train_steps(self, opt, layer, steps, rng):
        for _ in range(steps):
            x = Tensor(rng.normal(size=(4, 3)))
            loss = (layer(x) * layer(x)).mean()
            opt.zero_grad()
            loss.backward()
            opt.step()

    @pytest.mark.parametrize("make_opt", [
        lambda params: Adam(params, lr=0.01, weight_decay=1e-3),
        lambda params: SGD(params, lr=0.01, momentum=0.9),
    ])
    def test_roundtrip_preserves_trajectory(self, make_opt):
        rng_a = np.random.default_rng(7)
        layer_a = Linear(3, 2, np.random.default_rng(0))
        opt_a = make_opt(layer_a.parameters())
        self._train_steps(opt_a, layer_a, 3, rng_a)

        # Clone: params + optimizer state through the dict round-trip.
        layer_b = Linear(3, 2, np.random.default_rng(0))
        layer_b.load_state_dict(layer_a.state_dict())
        opt_b = make_opt(layer_b.parameters())
        opt_b.load_state_dict(opt_a.state_dict())

        rng_b = np.random.default_rng(11)
        rng_a2 = np.random.default_rng(11)
        self._train_steps(opt_a, layer_a, 3, rng_a2)
        self._train_steps(opt_b, layer_b, 3, rng_b)
        assert states_equal(layer_a.state_dict(), layer_b.state_dict())

    def test_shape_mismatch_rejected(self):
        layer = Linear(3, 2, np.random.default_rng(0))
        opt = Adam(layer.parameters())
        state = opt.state_dict()
        bad = {k: (v if not k.startswith("m/") else np.zeros((9, 9)))
               for k, v in state.items()}
        fresh = Adam(Linear(3, 2, np.random.default_rng(0)).parameters())
        with pytest.raises(ValueError):
            fresh.load_state_dict(bad)


# ----------------------------------------------------------------------
# Fault injector mechanics
# ----------------------------------------------------------------------
class TestFaultInjector:
    def test_noop_when_unarmed(self):
        faults.fire("trainer.outer", outer=0)  # must not raise
        assert faults.active() is None

    def test_once_semantics_and_log(self):
        with faults.raise_at_op("atomic.post_write", 2) as injector:
            faults.fire("atomic.post_write", tmp=None, final="a")
            with pytest.raises(CrashInjected):
                faults.fire("atomic.post_write", tmp=None, final="b")
            # once=True: the third call must NOT re-trip.
            faults.fire("atomic.post_write", tmp=None, final="c")
        assert injector.fired() == 1
        assert injector.log[0]["site"] == "atomic.post_write"
        assert injector.log[0]["count"] == 2

    def test_stack_restored_after_exit(self):
        with faults.crash_at_outer(99):
            assert faults.active() is not None
        assert faults.active() is None


# ----------------------------------------------------------------------
# Resumable training: bitwise guarantees
# ----------------------------------------------------------------------
class TestResume:
    def test_catehgn_kill_and_resume_bitwise(self, tiny_dataset, tmp_path):
        reference = CATEHGN(small_config()).fit(tiny_dataset)
        ref_state = reference.model.state_dict()
        ref_pred = reference.predict()

        victim = CATEHGN(small_config())
        with pytest.raises(CrashInjected):
            with faults.crash_at_outer(2):
                victim.fit(tiny_dataset, checkpoint_dir=tmp_path)
        assert SnapshotStore(tmp_path).steps(), "no snapshot written pre-crash"

        resumed = CATEHGN(small_config())
        resumed.fit(tiny_dataset, checkpoint_dir=tmp_path, resume=True)
        events = [e for e in resumed.history.events if e["type"] == "resume"]
        assert len(events) == 1 and events[0]["step"] == 1
        assert states_equal(ref_state, resumed.model.state_dict())
        assert np.array_equal(ref_pred, resumed.predict())

    def test_rgcn_kill_and_resume_bitwise(self, tiny_dataset, tmp_path):
        config = GNNTrainConfig(epochs=6, eval_every=1, patience=10, seed=0)
        reference = RGCN(config).fit(tiny_dataset)
        ref_state = reference.network.state_dict()
        ref_pred = reference.predict()

        victim = RGCN(config)
        with pytest.raises(CrashInjected):
            with faults.crash_at_epoch(3):
                victim.fit(tiny_dataset, checkpoint_dir=tmp_path)

        resumed = RGCN(config)
        resumed.fit(tiny_dataset, checkpoint_dir=tmp_path, resume=True)
        assert any(e["type"] == "resume" for e in resumed.events)
        assert states_equal(ref_state, resumed.network.state_dict())
        assert np.array_equal(ref_pred, resumed.predict())

    def test_resume_requires_checkpoint_dir(self, tiny_dataset):
        with pytest.raises(ValueError, match="checkpoint_dir"):
            CATEHGN(small_config()).fit(tiny_dataset, resume=True)

    def test_resume_rejects_config_mismatch(self, tiny_dataset, tmp_path):
        est = CATEHGN(small_config())
        with pytest.raises(CrashInjected):
            with faults.crash_at_outer(2):
                est.fit(tiny_dataset, checkpoint_dir=tmp_path)
        other = CATEHGN(small_config(dim=16))
        with pytest.raises(ValueError, match="dim"):
            other.fit(tiny_dataset, checkpoint_dir=tmp_path, resume=True)

    def test_resume_with_empty_dir_trains_from_scratch(self, tiny_dataset,
                                                       tmp_path):
        est = CATEHGN(small_config())
        est.fit(tiny_dataset, checkpoint_dir=tmp_path / "fresh", resume=True)
        assert est.model is not None
        assert not any(e["type"] == "resume" for e in est.history.events)


# ----------------------------------------------------------------------
# Divergence guard
# ----------------------------------------------------------------------
class TestDivergenceGuard:
    def test_nan_grad_rolls_back_exactly_once(self, tiny_dataset):
        est = CATEHGN(small_config())
        with faults.nan_in_grad(iter=2) as injector:
            est.fit(tiny_dataset)
        assert injector.fired() == 1
        rollbacks = [e for e in est.history.events
                     if e["type"] == "rollback"]
        assert len(rollbacks) == 1
        event = rollbacks[0]
        assert event["step"] == 2 and event["resumed_from"] == 1
        assert "non-finite" in event["reason"]
        # LR backoff applied to both optimizers.
        cfg = est.config
        assert event["lr"][0] == pytest.approx(cfg.lr * cfg.lr_backoff)
        assert event["lr"][1] == pytest.approx(cfg.center_lr * cfg.lr_backoff)
        # Training recovered and finished with finite numbers.
        assert np.all(np.isfinite(est.predict()))
        assert np.all(np.isfinite(est.history.train_loss))

    def test_baseline_nan_grad_rolls_back(self, tiny_dataset):
        config = GNNTrainConfig(epochs=5, eval_every=1, patience=10, seed=0)
        est = RGCN(config)
        with faults.nan_in_grad(iter=2):
            est.fit(tiny_dataset)
        rollbacks = [e for e in est.events if e["type"] == "rollback"]
        assert len(rollbacks) == 1
        assert np.all(np.isfinite(est.predict()))

    def test_guard_disabled_lets_anomaly_escape(self, tiny_dataset):
        """Without the guard, the tape sanitizer's signal propagates."""
        est = CATEHGN(small_config(divergence_guard=False,
                                   debug_anomaly=True))
        with pytest.raises(FloatingPointError):
            with faults.nan_in_grad(iter=1):
                est.fit(tiny_dataset)

    def test_guard_is_trajectory_neutral_when_healthy(self, tiny_dataset):
        with_guard = CATEHGN(small_config()).fit(tiny_dataset)
        without = CATEHGN(small_config(divergence_guard=False)).fit(
            tiny_dataset)
        assert states_equal(with_guard.model.state_dict(),
                            without.model.state_dict())
        assert with_guard.history.events == []


# ----------------------------------------------------------------------
# Serving checkpoints + graph exports: crash-safe, checksummed
# ----------------------------------------------------------------------
class TestCheckpointAtomicity:
    def _save(self, path):
        from repro.serve.checkpoint import save_checkpoint

        return save_checkpoint(
            path, {"kind": "t"},
            {"w": np.arange(4, dtype=np.float64)},
            {"ids": np.array([1, 2])},
        )

    def test_truncated_checkpoint_rejected(self, tmp_path):
        from repro.serve.checkpoint import load_checkpoint

        out = self._save(tmp_path / "ck")
        payload = out.read_bytes()
        out.write_bytes(payload[: len(payload) // 2])
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(out)

    def test_bitflipped_checkpoint_rejected(self, tmp_path):
        from repro.serve.checkpoint import load_checkpoint

        out = self._save(tmp_path / "ck")
        payload = bytearray(out.read_bytes())
        payload[len(payload) // 2] ^= 0xFF
        out.write_bytes(bytes(payload))
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(out)

    def test_kill_before_replace_keeps_previous_checkpoint(self, tmp_path):
        from repro.serve.checkpoint import load_checkpoint, save_checkpoint

        out = self._save(tmp_path / "ck")
        with pytest.raises(CrashInjected):
            with faults.kill_before_replace():
                save_checkpoint(tmp_path / "ck", {"kind": "t2"},
                                {"w": np.zeros(4)})
        ck = load_checkpoint(out)
        assert ck.meta["kind"] == "t"
        assert np.array_equal(ck.state["w"], np.arange(4, dtype=np.float64))

    def test_pre_checksum_checkpoint_still_loads(self, tmp_path):
        """Files written before checksumming carry no digest: accepted."""
        from repro.serve.checkpoint import (CHECKPOINT_FORMAT_VERSION,
                                            load_checkpoint)

        arrays = {
            "__checkpoint__": np.array(json.dumps(
                {"kind": "old", "format_version": CHECKPOINT_FORMAT_VERSION}
            )),
            "param/w": np.ones(3),
        }
        out = tmp_path / "old.npz"
        np.savez_compressed(out, **arrays)
        ck = load_checkpoint(out)
        assert ck.meta["kind"] == "old"

    def test_graph_bitflip_rejected(self, tiny_single_dataset, tmp_path):
        from repro.data.io import load_graph, save_graph

        base = tmp_path / "g"
        save_graph(tiny_single_dataset.graph, base)
        load_graph(base)  # good file round-trips
        npz = base.with_suffix(".npz")
        payload = bytearray(npz.read_bytes())
        payload[len(payload) // 3] ^= 0xFF
        npz.write_bytes(bytes(payload))
        with pytest.raises(CheckpointCorruptError):
            load_graph(base)


# ----------------------------------------------------------------------
# Drill CLI
# ----------------------------------------------------------------------
def test_drill_atomicity_via_cli(capsys):
    from repro.resilience.drill import main

    assert main(["--only", "atomicity"]) == 0
    out = capsys.readouterr().out
    assert "atomicity: PASS" in out and "1/1 drills passed" in out
