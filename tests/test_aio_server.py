"""HTTP tests for the asyncio serving runtime (DESIGN §16).

Covers the endpoint surface (parity with the threaded server, pinned
bitwise on the response bodies), the admission-queue backpressure
semantics (503 + Retry-After, probes bypass admission), request-framing
edge cases over raw sockets, and an 8-thread client stress run under
the tsan-lite race detector.
"""

import json
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core import CATEHGN
from repro.eval.runner import default_cate_config
from repro.serve import (
    BackgroundAsyncServer,
    BatchSettings,
    InferenceEngine,
    ServiceLimits,
    ServingRuntime,
    make_server,
)


@pytest.fixture(scope="module")
def served(tiny_dataset, tmp_path_factory):
    """(estimator, engine, aio base URL, threaded base URL)."""
    config = default_cate_config(dim=16, seed=0, outer_iters=1, mini_iters=1)
    est = CATEHGN(config).fit(tiny_dataset)
    path = est.save_checkpoint(tmp_path_factory.mktemp("ckpt") / "model")

    aio_engine = InferenceEngine.from_checkpoint(path, cache_size=0)
    bg = BackgroundAsyncServer(aio_engine,
                               settings=BatchSettings(max_wait_ms=1.0))
    host, port = bg.start()

    threaded_engine = InferenceEngine.from_checkpoint(path, cache_size=0)
    server = make_server(threaded_engine, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()

    yield (est, aio_engine, f"http://{host}:{port}",
           f"http://127.0.0.1:{server.server_address[1]}")
    bg.shutdown()
    server.shutdown()


def _get(base, path):
    with urllib.request.urlopen(base + path, timeout=10) as resp:
        return resp.status, resp.read()


def _post(base, path, body):
    req = urllib.request.Request(
        base + path, data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(req, timeout=10) as resp:
        return resp.status, resp.read()


def _err(fn, *args):
    with pytest.raises(urllib.error.HTTPError) as info:
        fn(*args)
    return info.value


# ---------------------------------------------------------------------------
# Endpoint surface + bitwise parity with the threaded server
# ---------------------------------------------------------------------------
class TestEndpoints:
    def test_healthz(self, served):
        _est, engine, base, _threaded = served
        status, body = _get(base, "/healthz")
        health = json.loads(body)
        assert status == 200
        assert health["status"] == "ok"
        assert health["breaker"] == "closed"
        assert health["num_papers"] == engine.num_papers
        assert health["queue_depth"] == 0

    def test_predict_post_bitwise_matches_threaded(self, served):
        _est, engine, base, threaded = served
        ids = [0, 3, 7, engine.num_papers - 1]
        _, aio_body = _post(base, "/predict", {"paper_ids": ids})
        _, thr_body = _post(threaded, "/predict", {"paper_ids": ids})
        # Byte-identical JSON: same values, same key order, no float
        # drift between the batched and the unbatched path.
        assert aio_body == thr_body

    def test_predict_get_bitwise_matches_threaded(self, served):
        _est, _engine, base, threaded = served
        _, aio_body = _get(base, "/predict?ids=1,2,5")
        _, thr_body = _get(threaded, "/predict?ids=1,2,5")
        assert aio_body == thr_body

    def test_predict_matches_estimator(self, served):
        est, _engine, base, _threaded = served
        _, body = _post(base, "/predict", {"paper_ids": [4, 9]})
        out = json.loads(body)
        expected = est.predict()[[4, 9]]
        assert out["predictions"] == [float(x) for x in expected]
        assert out["source"] == "model"
        assert out["degraded"] is False

    def test_rank_bitwise_matches_threaded(self, served):
        _est, _engine, base, threaded = served
        payload = {"node_type": "paper", "k": 5}
        _, aio_body = _post(base, "/rank", payload)
        _, thr_body = _post(threaded, "/rank", payload)
        assert aio_body == thr_body

    def test_title_cold_start(self, served):
        _est, engine, base, _threaded = served
        _, body = _post(base, "/predict", {"title": "graph neural nets"})
        out = json.loads(body)
        assert out["cold_start"] is True
        assert out["prediction"] == float(
            engine.score_title("graph neural nets"))

    def test_metrics_exposes_batching(self, served):
        _est, _engine, base, _threaded = served
        _, body = _get(base, "/metrics")
        metrics = json.loads(body)
        batching = metrics["batching"]
        for key in ("batches", "batched_requests", "mean_batch_size",
                    "coalesce_ratio", "batch_size_histogram",
                    "queue_wait_ms_p50", "queue_wait_ms_p99",
                    "compute_ms_p50", "compute_ms_p99", "queue_depth",
                    "queue_capacity", "settings"):
            assert key in batching, key
        assert metrics["breaker"]["state"] == "closed"
        assert "cache" in metrics


class TestErrors:
    def test_unknown_endpoint_404(self, served):
        assert _err(_get, served[2], "/nope").code == 404

    def test_out_of_range_id_400(self, served):
        _est, engine, base, _threaded = served
        exc = _err(_post, base, "/predict",
                   {"paper_ids": [engine.num_papers + 5]})
        assert exc.code == 400

    def test_bad_ids_type_400(self, served):
        assert _err(_post, served[2], "/predict",
                    {"paper_ids": "zero"}).code == 400

    def test_missing_ids_400(self, served):
        assert _err(_get, served[2], "/predict").code == 400

    def test_invalid_json_400(self, served):
        req = urllib.request.Request(
            served[2] + "/predict", data=b"{not json",
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(req, timeout=10)
        assert info.value.code == 400

    def test_oversized_body_413(self, served):
        # The server answers 413 from the Content-Length alone, before
        # (and without) reading the payload, then closes — so it must
        # be poked over a raw socket: urllib would die on EPIPE while
        # still uploading.
        req = (b"POST /predict HTTP/1.1\r\nHost: t\r\n"
               b"Content-Type: application/json\r\n"
               b"Content-Length: 2000000\r\n\r\n")
        raw = _raw(served[2], req)
        assert raw.startswith(b"HTTP/1.1 413")
        assert b"exceeds" in raw


# ---------------------------------------------------------------------------
# Raw-socket framing edge cases
# ---------------------------------------------------------------------------
def _raw(base, payload, timeout=10.0):
    host, port = base[len("http://"):].split(":")
    with socket.create_connection((host, int(port)), timeout=timeout) as sk:
        sk.sendall(payload)
        sk.settimeout(timeout)
        chunks = []
        try:
            while True:
                chunk = sk.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
        except TimeoutError:
            pass
    return b"".join(chunks)


def test_truncated_body_400(served):
    body = b'{"paper_ids": [0]}'
    req = (b"POST /predict HTTP/1.1\r\nHost: t\r\n"
           b"Content-Length: " + str(len(body) + 50).encode()
           + b"\r\n\r\n" + body)
    # The server's readexactly waits out limits.read_timeout (5s
    # default) before answering, so give the raw reader headroom.
    raw = _raw(served[2], req, timeout=30.0)
    assert raw.startswith(b"HTTP/1.1 400")
    assert b"truncated" in raw


def test_malformed_request_line_400(served):
    raw = _raw(served[2], b"NONSENSE\r\n\r\n")
    assert raw.startswith(b"HTTP/1.1 400")


def test_keep_alive_two_requests_one_connection(served):
    body = json.dumps({"paper_ids": [1]}).encode()
    one = (b"POST /predict HTTP/1.1\r\nHost: t\r\n"
           b"Content-Type: application/json\r\n"
           b"Content-Length: " + str(len(body)).encode()
           + b"\r\nConnection: keep-alive\r\n\r\n" + body)
    two = one.replace(b"keep-alive", b"close")
    raw = _raw(served[2], one + two)
    assert raw.count(b"HTTP/1.1 200") == 2


# ---------------------------------------------------------------------------
# Backpressure: bounded admission, control-endpoint bypass
# ---------------------------------------------------------------------------
class _SlowRuntime(ServingRuntime):
    """Holds the executor long enough for the queue to fill."""

    def predict(self, paper_ids):
        time.sleep(0.25)
        return super().predict(paper_ids)


@pytest.fixture()
def saturated(tiny_dataset, tmp_path_factory):
    config = default_cate_config(dim=16, seed=0, outer_iters=1, mini_iters=1)
    est = CATEHGN(config).fit(tiny_dataset)
    path = est.save_checkpoint(tmp_path_factory.mktemp("sat") / "model")
    engine = InferenceEngine.from_checkpoint(path, cache_size=0)
    bg = BackgroundAsyncServer(
        engine, runtime=_SlowRuntime(engine),
        settings=BatchSettings(max_batch_size=1, max_wait_ms=0.0,
                               max_queue_depth=2),
        limits=ServiceLimits(retry_after_seconds=3))
    host, port = bg.start()
    yield bg, f"http://{host}:{port}"
    bg.shutdown()


def test_backpressure_sheds_with_503_and_retry_after(saturated):
    bg, base = saturated
    outcomes = []
    lock = threading.Lock()

    def fire():
        try:
            status, _ = _post(base, "/predict", {"paper_ids": [0]})
            headers = {}
        except urllib.error.HTTPError as exc:
            status, headers = exc.code, dict(exc.headers)
        with lock:
            outcomes.append((status, headers))

    threads = [threading.Thread(target=fire) for _ in range(10)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)

    statuses = sorted(s for s, _ in outcomes)
    assert len(outcomes) == 10
    assert set(statuses) <= {200, 503}
    shed = [(s, h) for s, h in outcomes if s == 503]
    # max_batch_size=1 over a 0.25s engine with queue depth 2: ten
    # near-simultaneous requests cannot all fit.
    assert shed, f"nothing shed: {statuses}"
    assert all(h.get("Retry-After") == "3" for _, h in shed)
    snap = bg.app.batcher.queue
    assert snap.total_shed == len(shed)
    assert snap.total_admitted == 10 - len(shed)


def test_probes_bypass_admission_while_saturated(saturated):
    _bg, base = saturated
    # Fill the pipeline: one computing + two queued + spares shed.
    blockers = [threading.Thread(
        target=lambda: _post_quietly(base, {"paper_ids": [1]}))
        for _ in range(6)]
    for t in blockers:
        t.start()
    time.sleep(0.05)  # let them hit the queue
    try:
        status, body = _get(base, "/healthz")
        assert status == 200
        health = json.loads(body)
        assert health["status"] == "degraded"  # saturated queue reported
        status, _ = _get(base, "/metrics")
        assert status == 200
    finally:
        for t in blockers:
            t.join(timeout=60)


def _post_quietly(base, body):
    try:
        _post(base, "/predict", body)
    except urllib.error.HTTPError:
        pass  # shed blockers are expected here


# ---------------------------------------------------------------------------
# 8-thread client stress under the race detector
# ---------------------------------------------------------------------------
def test_concurrent_clients_stress(served, run_threads):
    """8 client threads, race-detector window, exact answers."""
    est, engine, base, _threaded = served
    expected = est.predict()
    per_thread = 12
    # The module-scoped server already served this file's deliberate
    # 4xx probes; assert on the stress run's delta, not the totals.
    before = json.loads(_get(base, "/metrics")[1])

    def worker(tid):
        for i in range(per_thread):
            pid = (tid * per_thread + i) % engine.num_papers
            status, body = _post(base, "/predict", {"paper_ids": [pid]})
            assert status == 200
            out = json.loads(body)
            assert out["predictions"] == [float(expected[pid])]

    run_threads(worker, count=8, timeout=120)

    after = json.loads(_get(base, "/metrics")[1])
    assert after["batching"]["failed_batches"] == 0
    assert after["total_errors"] == before["total_errors"]
    delta = (after["batching"]["batched_requests"]
             - before["batching"]["batched_requests"])
    assert delta == 8 * per_thread
