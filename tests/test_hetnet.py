"""Unit tests for the heterogeneous network data model."""

import numpy as np
import pytest

from repro.hetnet import (
    AUTHOR,
    FUNDAMENTAL_METAPATHS,
    PAPER,
    TERM,
    VENUE,
    HeteroGraph,
    Schema,
    metapath_pairs,
    metapath_random_walks,
    negative_nodes,
    publication_schema,
    sample_neighborhood,
    validate_metapath,
)


def small_graph() -> HeteroGraph:
    graph = HeteroGraph(publication_schema())
    graph.add_nodes(PAPER, 4, names=[f"p{i}" for i in range(4)])
    graph.add_nodes(AUTHOR, 3)
    graph.add_nodes(VENUE, 2)
    graph.add_nodes(TERM, 2)
    # cites: src = cited, dst = citing.
    graph.set_edges((PAPER, "cites", PAPER), [0, 1], [2, 2])
    graph.set_edges((PAPER, "written_by", AUTHOR), [0, 1, 2, 3], [0, 0, 1, 2])
    graph.set_edges((AUTHOR, "writes", PAPER), [0, 0, 1, 2], [0, 1, 2, 3])
    graph.set_edges((PAPER, "published_in", VENUE), [0, 1, 2, 3], [0, 0, 1, 1])
    graph.set_edges((VENUE, "publishes", PAPER), [0, 0, 1, 1], [0, 1, 2, 3])
    graph.set_edges((PAPER, "mentions", TERM), [0, 2], [0, 1], [0.5, 2.0])
    graph.set_edges((TERM, "mentioned_by", PAPER), [0, 1], [0, 2], [0.5, 2.0])
    return graph


class TestSchema:
    def test_publication_schema_types(self):
        schema = publication_schema()
        assert set(schema.node_types) == {PAPER, AUTHOR, VENUE, TERM}
        assert len(schema.edge_types) == 7  # cites is single-direction

    def test_no_cited_by_direction(self):
        schema = publication_schema()
        keys = [et.key for et in schema.edge_types]
        assert (PAPER, "cites", PAPER) in keys
        assert not any(rel == "cited_by" for _, rel, _ in keys)

    def test_schema_without_terms(self):
        schema = publication_schema(include_terms=False)
        assert TERM not in schema.node_types
        assert len(schema.edge_types) == 5

    def test_duplicate_node_type_rejected(self):
        schema = publication_schema()
        with pytest.raises(ValueError):
            schema.add_node_type(PAPER)

    def test_duplicate_edge_type_rejected(self):
        schema = publication_schema()
        with pytest.raises(ValueError):
            schema.add_edge_type(PAPER, "cites", PAPER)

    def test_edge_type_with_unknown_node_rejected(self):
        schema = Schema()
        schema.__post_init__()
        schema.add_node_type("a")
        with pytest.raises(ValueError):
            schema.add_edge_type("a", "r", "b")

    def test_edge_types_into_and_from(self):
        schema = publication_schema()
        into_paper = {et.relation for et in schema.edge_types_into(PAPER)}
        assert into_paper == {"cites", "writes", "publishes", "mentioned_by"}
        from_paper = {et.relation for et in schema.edge_types_from(PAPER)}
        assert from_paper == {"cites", "written_by", "published_in", "mentions"}


class TestGraph:
    def test_statistics(self):
        graph = small_graph()
        stats = graph.statistics()
        assert stats["#paper"] == 4
        assert stats["#links"] == graph.total_edges == 22

    def test_validate_catches_out_of_range(self):
        graph = small_graph()
        graph.edges[(PAPER, "cites", PAPER)].src[0] = 99
        with pytest.raises(ValueError):
            graph.validate()

    def test_set_edges_rejects_out_of_range(self):
        graph = small_graph()
        with pytest.raises(ValueError):
            graph.set_edges((PAPER, "cites", PAPER), [9], [0])

    def test_set_edges_rejects_unknown_type(self):
        graph = small_graph()
        with pytest.raises(ValueError):
            graph.set_edges((PAPER, "likes", PAPER), [0], [1])

    def test_features_shape_checked(self):
        graph = small_graph()
        with pytest.raises(ValueError):
            graph.set_features(PAPER, np.zeros((3, 8)))

    def test_attrs_roundtrip(self):
        graph = small_graph()
        graph.set_attr(PAPER, "year", np.arange(4))
        assert graph.has_attr(PAPER, "year")
        assert np.all(graph.get_attr(PAPER, "year") == np.arange(4))

    def test_csr_neighbors(self):
        graph = small_graph()
        csr = graph.csr((VENUE, "publishes", PAPER))
        src, w = csr.neighbors(2)  # papers published_in? dst=paper 2
        assert list(src) == [1]

    def test_in_degree(self):
        graph = small_graph()
        deg = graph.in_degree((PAPER, "cites", PAPER))
        assert list(deg) == [0, 0, 2, 0]

    def test_to_homogeneous_offsets(self):
        graph = small_graph()
        src, dst, weight, offsets = graph.to_homogeneous()
        assert len(src) == graph.total_edges
        assert src.max() < graph.total_nodes
        assert offsets[AUTHOR][0] == graph.num_nodes[PAPER]

    def test_subgraph_remaps_edges(self):
        graph = small_graph()
        sub, selected = graph.subgraph({PAPER: np.array([0, 2]),
                                        AUTHOR: np.array([0, 1]),
                                        VENUE: np.array([0, 1]),
                                        TERM: np.array([0, 1])})
        assert sub.num_nodes[PAPER] == 2
        cites = sub.edges[(PAPER, "cites", PAPER)]
        # Only 0 -> 2 survives (1 was dropped); remapped to 0 -> 1.
        assert list(cites.src) == [0] and list(cites.dst) == [1]

    def test_subgraph_slices_names_and_attrs(self):
        graph = small_graph()
        graph.set_attr(PAPER, "year", np.array([5, 6, 7, 8]))
        sub, _ = graph.subgraph({PAPER: np.array([1, 3]),
                                 AUTHOR: np.array([], dtype=np.intp),
                                 VENUE: np.array([], dtype=np.intp),
                                 TERM: np.array([], dtype=np.intp)})
        assert sub.node_names[PAPER] == ["p1", "p3"]
        assert list(sub.get_attr(PAPER, "year")) == [6, 8]

    def test_to_networkx_export(self):
        graph = small_graph()
        graph.set_attr(PAPER, "year", np.array([5, 6, 7, 8]))
        nx_graph = graph.to_networkx()
        assert nx_graph.number_of_nodes() == graph.total_nodes
        assert nx_graph.number_of_edges() == graph.total_edges
        assert nx_graph.nodes[(PAPER, 0)]["name"] == "p0"
        assert nx_graph.nodes[(PAPER, 2)]["year"] == 7
        relations = {d["relation"]
                     for _u, _v, d in nx_graph.edges(data=True)}
        assert "cites" in relations and "mentions" in relations

    def test_full_subgraph_is_clone(self):
        graph = small_graph()
        clone, _ = graph.subgraph(
            {t: np.arange(graph.num_nodes[t]) for t in graph.schema.node_types}
        )
        assert clone.total_edges == graph.total_edges
        assert clone.num_nodes == graph.num_nodes


class TestSampling:
    def test_neighborhood_contains_seeds(self):
        graph = small_graph()
        rng = np.random.default_rng(0)
        sub, selected, seed_local = sample_neighborhood(
            graph, np.array([2]), hops=2, fanout=10, rng=rng
        )
        assert 2 in selected[PAPER]
        assert sub.num_nodes[PAPER] == len(selected[PAPER])
        # Seed position maps back to original id 2.
        assert selected[PAPER][seed_local[0]] == 2

    def test_fanout_limits_expansion(self):
        graph = small_graph()
        rng = np.random.default_rng(0)
        sub_small, sel_small, _ = sample_neighborhood(
            graph, np.array([2]), hops=1, fanout=1, rng=rng
        )
        sub_big, sel_big, _ = sample_neighborhood(
            graph, np.array([2]), hops=1, fanout=10, rng=rng
        )
        total_small = sum(len(v) for v in sel_small.values())
        total_big = sum(len(v) for v in sel_big.values())
        assert total_small <= total_big

    def test_negative_nodes_avoid_exclusions_mostly(self):
        rng = np.random.default_rng(0)
        exclude = np.zeros(100, dtype=np.intp)
        negs = negative_nodes(50, 100, rng, exclude=exclude)
        # One redraw pass: collisions should be rare, not the norm.
        assert (negs == 0).mean() < 0.2


class TestMetapaths:
    def test_fundamental_paths_chain(self):
        for path in FUNDAMENTAL_METAPATHS.values():
            validate_metapath(path)

    def test_broken_path_rejected(self):
        with pytest.raises(ValueError):
            validate_metapath(((PAPER, "written_by", AUTHOR),
                               (VENUE, "publishes", PAPER)))

    def test_pap_pairs(self):
        graph = small_graph()
        src, dst = metapath_pairs(graph, FUNDAMENTAL_METAPATHS["P-A-P"])
        pairs = set(zip(src.tolist(), dst.tolist()))
        # Author 0 wrote papers 0 and 1 -> all ordered pairs incl self.
        assert (0, 1) in pairs and (1, 0) in pairs

    def test_pvp_pairs_cover_same_venue(self):
        graph = small_graph()
        src, dst = metapath_pairs(graph, FUNDAMENTAL_METAPATHS["P-V-P"])
        pairs = set(zip(src.tolist(), dst.tolist()))
        assert (2, 3) in pairs and (3, 2) in pairs

    def test_max_pairs_cap(self):
        graph = small_graph()
        rng = np.random.default_rng(0)
        src, dst = metapath_pairs(graph, FUNDAMENTAL_METAPATHS["P-V-P"],
                                  max_pairs=3, rng=rng)
        assert len(src) == 3

    def test_random_walks_respect_types(self):
        graph = small_graph()
        rng = np.random.default_rng(0)
        walks = metapath_random_walks(
            graph, [FUNDAMENTAL_METAPATHS["P-A-P"]], walks_per_node=2,
            walk_length=5, rng=rng,
        )
        assert len(walks) == graph.num_nodes[PAPER] * 2
        for walk in walks:
            types = [t for t, _ in walk]
            assert types[0] == PAPER
            for i, t in enumerate(types):
                assert t == (PAPER if i % 2 == 0 else AUTHOR)
