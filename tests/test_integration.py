"""End-to-end integration: dataset -> training -> prediction -> analysis."""

import numpy as np
import pytest

from repro.core import CATEHGN, CATEHGNConfig
from repro.data import TextArtifacts, load_graph, make_dblp_full, save_graph
from repro.eval import evaluate_model, render_table2, rmse
from repro.hetnet import AUTHOR, PAPER

from .conftest import tiny_config


class TestPipeline:
    def test_full_pipeline_beats_mean_on_combined_split(self, tiny_dataset):
        config = CATEHGNConfig(dim=8, attention_heads=2, num_clusters=4,
                               kappa=10, outer_iters=4, mini_iters=3,
                               lr=0.02, patience=4, seed=0)
        model = CATEHGN(config).fit(tiny_dataset)
        preds = model.predict()
        y = tiny_dataset.labels
        # Evaluate on everything the model never saw a label for.
        unseen = np.concatenate([tiny_dataset.val_idx, tiny_dataset.test_idx])
        constant = rmse(y[unseen], np.full(len(unseen),
                                           y[tiny_dataset.train_idx].mean()))
        assert rmse(y[unseen], preds[unseen]) < constant * 1.1

    def test_roster_rows_render(self, tiny_dataset):
        from repro.baselines import CCP, BERTRegressor

        results = {}
        for name, model in (("BERT", BERTRegressor(epochs=20)),
                            ("CCP", CCP())):
            results[name] = evaluate_model(name, model, tiny_dataset)
        rendered = render_table2({tiny_dataset.name: results},
                                 ["BERT", "CCP"])
        assert "BERT" in rendered and "CCP" in rendered

    def test_graph_roundtrip_preserves_training(self, tiny_dataset, tmp_path):
        """A graph saved and reloaded trains to identical predictions."""
        save_graph(tiny_dataset.graph, tmp_path / "g")
        reloaded = load_graph(tmp_path / "g")
        import dataclasses

        clone = dataclasses.replace(tiny_dataset, graph=reloaded)
        config = CATEHGNConfig(dim=8, attention_heads=2, num_clusters=4,
                               kappa=10, outer_iters=1, mini_iters=2,
                               seed=0)
        # Serialization stores edge types sorted, so dict iteration order
        # (and with it RNG consumption) may differ — require equivalent
        # structure and equivalent training quality, not bit-identity.
        for key, edge in tiny_dataset.graph.edges.items():
            assert np.array_equal(edge.src, reloaded.edges[key].src)
            assert np.array_equal(edge.dst, reloaded.edges[key].dst)
        p1 = CATEHGN(config).fit(tiny_dataset).predict()
        p2 = CATEHGN(config).fit(clone).predict()
        y = tiny_dataset.labels[tiny_dataset.test_idx]
        r1 = rmse(y, p1[tiny_dataset.test_idx])
        r2 = rmse(y, p2[tiny_dataset.test_idx])
        assert abs(r1 - r2) < 0.15 * max(r1, r2)

    def test_world_scales_with_config(self):
        small = make_dblp_full(tiny_config(num_papers=80, num_authors=30,
                                           seed=2))
        assert small.num_papers == 80
        assert small.graph.num_nodes[AUTHOR] == 30
        small.graph.validate()

    def test_author_impact_reflects_track_record(self, tiny_dataset):
        """The one-space regressor scores context nodes meaningfully: an
        author's predicted impact should track the observable quantity —
        the mean label of their training papers."""
        config = CATEHGNConfig(dim=8, attention_heads=2, num_clusters=4,
                               kappa=10, outer_iters=4, mini_iters=3,
                               lr=0.02, seed=0)
        model = CATEHGN(config).fit(tiny_dataset)
        impacts = model.node_impacts(AUTHOR)
        graph = tiny_dataset.graph
        pa = graph.edges[(PAPER, "written_by", AUTHOR)]
        train_mask = np.zeros(tiny_dataset.num_papers, dtype=bool)
        train_mask[tiny_dataset.train_idx] = True
        keep = train_mask[pa.src]
        sums = np.bincount(pa.dst[keep],
                           weights=tiny_dataset.labels[pa.src[keep]],
                           minlength=graph.num_nodes[AUTHOR])
        counts = np.bincount(pa.dst[keep], minlength=graph.num_nodes[AUTHOR])
        active = counts >= 2
        track = sums[active] / counts[active]
        from scipy import stats

        rho, _ = stats.spearmanr(impacts[active], track)
        assert np.isfinite(rho)
        assert impacts[active].std() > 0  # impacts differentiate authors


class TestRobustness:
    def test_training_with_no_val_year(self):
        """A world whose papers all predate the val year still trains."""
        dataset = make_dblp_full(tiny_config(num_papers=60, num_authors=25,
                                             year_min=2004, year_max=2013,
                                             seed=5))
        assert len(dataset.val_idx) == 0
        config = CATEHGNConfig(dim=8, attention_heads=2, num_clusters=3,
                               kappa=8, outer_iters=1, mini_iters=1, seed=0)
        preds = CATEHGN(config).fit(dataset).predict()
        assert np.all(np.isfinite(preds))

    def test_single_layer_model(self, tiny_dataset):
        config = CATEHGNConfig(dim=8, attention_heads=2, num_clusters=4,
                               kappa=10, num_layers=1, outer_iters=1,
                               mini_iters=2, seed=0)
        preds = CATEHGN(config).fit(tiny_dataset).predict()
        assert np.all(np.isfinite(preds))

    def test_three_layer_model(self, tiny_dataset):
        config = CATEHGNConfig(dim=8, attention_heads=1, num_clusters=4,
                               kappa=10, num_layers=3, outer_iters=1,
                               mini_iters=1, seed=0)
        preds = CATEHGN(config).fit(tiny_dataset).predict()
        assert np.all(np.isfinite(preds))

    def test_many_clusters_still_trains(self, tiny_dataset):
        config = CATEHGNConfig(dim=8, attention_heads=2, num_clusters=12,
                               kappa=10, outer_iters=1, mini_iters=1, seed=0)
        preds = CATEHGN(config).fit(tiny_dataset).predict()
        assert np.all(np.isfinite(preds))

    def test_predictions_change_after_training(self, tiny_dataset):
        config = CATEHGNConfig(dim=8, attention_heads=2, num_clusters=4,
                               kappa=10, outer_iters=2, mini_iters=3,
                               lr=0.03, seed=0, patience=10)
        model = CATEHGN(config)
        model.fit(tiny_dataset)
        assert len(model.history.train_loss) >= 1
        # Loss decreased across the run (training actually happened).
        assert model.history.train_loss[-1] <= model.history.train_loss[0]
