"""Gradcheck sweep over every nn layer and the core CATE-HGN modules.

``check_module`` verifies the analytic gradient of *every* Parameter
against two-sided finite differences, on deliberately tiny instances so
the FD loop (2 probes per scalar parameter) stays fast.
"""

import numpy as np
import pytest

from repro.analysis import check_module
from repro.core import (
    CAConfig,
    CATEHGNConfig,
    CATEHGNModel,
    ClusterModule,
    GraphBatch,
    HGNConfig,
    MIEstimator,
    OneSpaceHGN,
    concat_one_space,
)
from repro.nn import MLP, Activation, Embedding, LayerNorm, Linear, Sequential
from repro.tensor import Tensor

TOL = 1e-5


def fresh_rng():
    return np.random.default_rng(7)


def assert_module_grads(module, factory, forward=None):
    result = check_module(module, factory, forward=forward)
    assert result.passed
    assert result.max_rel_error < TOL
    return result


# ----------------------------------------------------------------------
# nn.layers
# ----------------------------------------------------------------------
def test_linear():
    layer = Linear(4, 3, fresh_rng())
    x = Tensor(fresh_rng().normal(size=(5, 4)))
    assert_module_grads(layer, lambda: (x,))


def test_linear_no_bias():
    layer = Linear(4, 3, fresh_rng(), bias=False)
    x = Tensor(fresh_rng().normal(size=(5, 4)))
    assert_module_grads(layer, lambda: (x,))


def test_embedding():
    layer = Embedding(6, 3, fresh_rng())
    idx = np.array([0, 2, 5, 2, 0])  # repeats exercise scatter-add
    assert_module_grads(layer, lambda: (idx,))


def test_layer_norm():
    layer = LayerNorm(5)
    # Shift away from perfectly-centered rows so var > 0 comfortably.
    x = Tensor(fresh_rng().normal(size=(4, 5)) + 0.3)
    assert_module_grads(layer, lambda: (x,))


def test_sequential_with_activation():
    rng = fresh_rng()
    model = Sequential(Linear(4, 6, rng), Activation(lambda t: t.tanh()),
                       Linear(6, 2, rng))
    x = Tensor(fresh_rng().normal(size=(3, 4)))
    assert_module_grads(model, lambda: (x,))


def test_mlp():
    model = MLP([4, 6, 6, 1], fresh_rng())
    x = Tensor(fresh_rng().normal(size=(3, 4)))
    assert_module_grads(model, lambda: (x,))


def test_mlp_with_dropout_in_eval():
    # check_module forces eval(); dropout must be identity there.
    model = MLP([4, 5, 2], fresh_rng(), dropout=0.5)
    x = Tensor(fresh_rng().normal(size=(3, 4)))
    assert_module_grads(model, lambda: (x,))


# ----------------------------------------------------------------------
# Core modules on a hand-built micro graph
# ----------------------------------------------------------------------
def micro_batch() -> GraphBatch:
    rng = np.random.default_rng(3)
    features = {
        "paper": rng.normal(size=(3, 2)),
        "author": rng.normal(size=(2, 2)),
    }
    w = np.ones(3)
    edges = {
        ("author", "writes", "paper"): (
            np.array([0, 1, 1]), np.array([0, 1, 2]), w, w),
        ("paper", "cites", "paper"): (
            np.array([0, 2]), np.array([1, 0]), w[:2], w[:2]),
    }
    return GraphBatch(
        node_types=["paper", "author"],
        features=features,
        edges=edges,
        num_nodes={"paper": 3, "author": 2},
        labeled_ids=np.array([0, 2], dtype=np.intp),
        labels=np.array([0.4, -0.3]),
    )


def test_mi_estimator():
    mod = MIEstimator(dim=3, seed=0)
    rng = fresh_rng()
    x = Tensor(rng.normal(size=(4, 3)))
    y = Tensor(rng.normal(size=(4, 3)))
    assert_module_grads(mod, lambda: (x, y))


def test_cluster_module_soft_assign():
    config = CAConfig(num_clusters=2, seed=0)
    mod = ClusterModule(config, dim=3, num_layers=1)
    h = Tensor(fresh_rng().normal(size=(4, 3)))
    assert_module_grads(mod, lambda: (h, 0))


def test_cluster_module_masking():
    config = CAConfig(num_clusters=2, seed=0)
    mod = ClusterModule(config, dim=3, num_layers=1)
    h = Tensor(fresh_rng().normal(size=(4, 3)))

    def forward(ht):
        q = mod.soft_assign(ht, 1)
        return mod.mask_embeddings(ht, q, 1)

    assert_module_grads(mod, lambda: (h,), forward=forward)


@pytest.mark.parametrize("composition", ["corr", "sub", "mult"])
@pytest.mark.parametrize("use_attention", [True, False], ids=["attn", "noattn"])
def test_one_space_hgn(composition, use_attention):
    config = HGNConfig(dim=3, num_layers=2, composition=composition,
                       attention_heads=2, use_attention=use_attention, seed=0)
    batch = micro_batch()
    hgn = OneSpaceHGN(config, batch.node_types,
                      {t: batch.features[t].shape[1] for t in batch.node_types},
                      list(batch.edges.keys()))

    def forward(b):
        out = hgn(b)
        final = concat_one_space(out.layers[-1], hgn.node_types)
        return final + hgn.regress(config.num_layers,
                                   out.layers[-1]["paper"]).sum()

    assert_module_grads(hgn, lambda: (batch,), forward=forward)


def test_catehgn_supervised_loss():
    config = CATEHGNConfig(dim=3, num_layers=1, attention_heads=2,
                           num_clusters=2, use_mi=False, use_te=False,
                           use_label_inputs=False, seed=0)
    batch = micro_batch()
    dims = {t: batch.features[t].shape[1] for t in batch.node_types}
    model = CATEHGNModel(config, batch.node_types, dims,
                         list(batch.edges.keys()))

    # NOTE: ca_loss is excluded deliberately — its self-training target P
    # is a stop-gradient (constant on the tape), which finite differences
    # would differentiate through, so FD and analytic gradients disagree
    # *by design* there.  supervised_loss exercises the full HGN + CA
    # masking path end-to-end.
    def forward(b):
        state = model.forward_state(b)
        return model.supervised_loss(state, b)

    assert_module_grads(model, lambda: (batch,), forward=forward)


def test_rgcn_baseline_network():
    """A supervised baseline network gradchecks end-to-end too."""
    from repro.baselines.rgcn import RGCNNetwork

    batch = micro_batch()
    net = RGCNNetwork(batch, dim=3, layers=1, seed=0)
    assert_module_grads(net, lambda: (batch,))


def test_check_module_catches_broken_layer():
    """A layer with a corrupted backward must fail the module check."""
    from repro.analysis import GradcheckError
    from repro.nn import Module, Parameter

    class Broken(Module):
        def __init__(self):
            super().__init__()
            self.w = Parameter(np.array([1.5, -0.5, 2.0]))

        def forward(self, x):
            out = x * self.w

            def backward(grad):
                x._accumulate(grad * self.w.data)
                self.w._accumulate(grad * x.data * 0.5)  # wrong scale

            return Tensor._make(out.data, (x, self.w), backward)

    x = Tensor(np.array([0.3, 0.7, -1.2]))
    with pytest.raises(GradcheckError):
        check_module(Broken(), lambda: (x,))


def test_check_module_requires_parameters():
    from repro.nn import Module

    class NoParams(Module):
        def forward(self, x):
            return x

    with pytest.raises(ValueError):
        check_module(NoParams(), lambda: (Tensor(np.ones(3)),))
