"""Tests for the twelve comparison methods (Section IV-A2)."""

import numpy as np
import pytest

from repro.baselines import (
    CCP,
    CPDF,
    GAT,
    HAN,
    HGCN,
    HGT,
    MAGNN,
    RGCN,
    BERTRegressor,
    CARTRegressor,
    FeatureExtractor,
    GNNTrainConfig,
    HetGNN,
    Hin2Vec,
    MetaPath2Vec,
    MLPRegressor,
    make_baselines,
)
from repro.baselines.api import LabelScaler
from repro.baselines.walks import skipgram_pairs, train_skipgram
from repro.eval import rmse


def tiny_gnn_config(**overrides) -> GNNTrainConfig:
    params = dict(dim=8, epochs=6, patience=3, seed=0)
    params.update(overrides)
    return GNNTrainConfig(**params)


class TestLabelScaler:
    def test_roundtrip(self):
        scaler = LabelScaler().fit(np.array([2.0, 4.0, 6.0]))
        z = scaler.transform(np.array([4.0]))
        assert np.isclose(z[0], 0.0)
        assert np.isclose(scaler.inverse(z)[0], 4.0)

    def test_inverse_floors_at_zero(self):
        scaler = LabelScaler().fit(np.array([2.0, 4.0]))
        assert scaler.inverse(np.array([-100.0]))[0] == 0.0

    def test_constant_labels_safe(self):
        scaler = LabelScaler().fit(np.array([3.0, 3.0]))
        assert scaler.std == 1.0


class TestCART:
    def test_fits_step_function(self):
        X = np.linspace(0, 1, 200).reshape(-1, 1)
        y = (X[:, 0] > 0.5).astype(float) * 10
        tree = CARTRegressor(max_depth=2, min_samples_leaf=5).fit(X, y)
        # Quantile-grid thresholds land within ~1.5% of the true step.
        assert rmse(y, tree.predict(X)) < 2.0

    def test_respects_max_depth(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(300, 3))
        y = rng.normal(size=300)
        tree = CARTRegressor(max_depth=3, min_samples_leaf=2).fit(X, y)
        assert tree.depth() <= 3

    def test_constant_target_single_leaf(self):
        X = np.zeros((50, 2))
        y = np.full(50, 7.0)
        tree = CARTRegressor().fit(X, y)
        assert tree.depth() == 0
        assert np.allclose(tree.predict(X), 7.0)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            CARTRegressor().predict(np.zeros((1, 1)))

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            CARTRegressor().fit(np.zeros(5), np.zeros(5))
        with pytest.raises(ValueError):
            CARTRegressor().fit(np.zeros((0, 2)), np.zeros(0))

    def test_min_samples_leaf_respected(self):
        X = np.arange(20, dtype=float).reshape(-1, 1)
        y = X[:, 0]
        tree = CARTRegressor(max_depth=10, min_samples_leaf=8,
                             min_samples_split=16).fit(X, y)

        def leaf_sizes(node, X_part):
            if node.feature < 0:
                return [len(X_part)]
            mask = X_part[:, node.feature] <= node.threshold
            return (leaf_sizes(node.left, X_part[mask])
                    + leaf_sizes(node.right, X_part[~mask]))

        assert min(leaf_sizes(tree._root, X)) >= 8


class TestFeatures:
    def test_feature_shapes(self, tiny_dataset):
        fx = FeatureExtractor(tiny_dataset)
        assert fx.ccp_features().shape == (tiny_dataset.num_papers, 9)
        assert fx.cpdf_features().shape == (tiny_dataset.num_papers, 16)

    def test_features_finite(self, tiny_dataset):
        fx = FeatureExtractor(tiny_dataset)
        assert np.all(np.isfinite(fx.cpdf_features()))

    def test_leave_one_out_removes_own_label(self, tiny_dataset):
        """A train paper's venue track record must exclude its own label;
        otherwise CART overfits on leaked information."""
        fx = FeatureExtractor(tiny_dataset)
        X = fx.ccp_features()
        venue_col = X[:, 4]
        # Find a venue with exactly one training paper: LOO mean must be 0.
        from repro.hetnet import PAPER, VENUE

        graph = tiny_dataset.graph
        pv = graph.edges[(PAPER, "published_in", VENUE)]
        train_set = set(tiny_dataset.train_idx.tolist())
        venue_train_counts = {}
        for p, v in zip(pv.src, pv.dst):
            if p in train_set:
                venue_train_counts.setdefault(int(v), []).append(int(p))
        singles = [ps[0] for v, ps in venue_train_counts.items()
                   if len(ps) == 1]
        if singles:
            assert venue_col[singles[0]] == 0.0

    def test_test_papers_keep_full_history(self, tiny_dataset):
        fx = FeatureExtractor(tiny_dataset)
        X = fx.ccp_features()
        # Test papers don't get the LOO discount (their labels are unseen).
        test_rows = X[tiny_dataset.test_idx]
        assert np.any(test_rows[:, 4] > 0)


class TestTraditional:
    def test_ccp_and_cpdf_run(self, tiny_dataset):
        for model_cls in (CCP, CPDF):
            model = model_cls().fit(tiny_dataset)
            preds = model.predict()
            assert preds.shape == (tiny_dataset.num_papers,)
            assert np.all(preds >= 0)

    def test_cpdf_uses_more_features_than_ccp(self, tiny_dataset):
        fx = FeatureExtractor(tiny_dataset)
        assert fx.cpdf_features().shape[1] > fx.ccp_features().shape[1]


class TestWalkModels:
    def test_skipgram_pairs_window(self):
        walks = [np.array([0, 1, 2, 3])]
        centers, contexts = skipgram_pairs(walks, window=1)
        pairs = set(zip(centers.tolist(), contexts.tolist()))
        assert (0, 1) in pairs and (1, 0) in pairs and (2, 3) in pairs
        assert (0, 2) not in pairs

    def test_skipgram_empty_walks(self):
        centers, contexts = skipgram_pairs([np.array([5])], window=2)
        assert len(centers) == 0

    def test_skipgram_embeds_cooccurring_nodes_closer(self):
        rng = np.random.default_rng(0)
        # Two cliques: 0-4 walk together, 5-9 walk together.
        walks = []
        for _ in range(200):
            walks.append(rng.permutation(5))
            walks.append(rng.permutation(5) + 5)
        centers, contexts = skipgram_pairs(walks, window=2)
        emb = train_skipgram(centers, contexts, 10, dim=8, epochs=3, seed=0)
        emb = emb / np.linalg.norm(emb, axis=1, keepdims=True)
        within = emb[0] @ emb[1]
        across = emb[0] @ emb[6]
        assert within > across

    def test_metapath2vec_runs(self, tiny_dataset):
        model = MetaPath2Vec(dim=8, walks_per_node=1, walk_length=5,
                             epochs=1, seed=0)
        preds = model.fit(tiny_dataset).predict()
        assert preds.shape == (tiny_dataset.num_papers,)
        assert np.all(np.isfinite(preds))

    def test_hin2vec_runs(self, tiny_dataset):
        model = Hin2Vec(dim=8, walks_per_node=1, walk_length=5, epochs=1,
                        seed=0)
        preds = model.fit(tiny_dataset).predict()
        assert preds.shape == (tiny_dataset.num_papers,)
        assert np.all(np.isfinite(preds))

    def test_mlp_regressor_learns_linear_map(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(128, 4))
        y = X @ np.array([1.0, -2.0, 0.5, 0.0]) + 5
        head = MLPRegressor(epochs=300, lr=0.01, seed=0).fit(X, y)
        assert rmse(y, head.predict(X)) < y.std() * 0.5


class TestGNNBaselines:
    @pytest.mark.parametrize("model_cls", [GAT, RGCN, HGCN, HGT, HAN, MAGNN,
                                           HetGNN])
    def test_gnn_trains_and_predicts(self, model_cls, tiny_dataset):
        model = model_cls(tiny_gnn_config())
        preds = model.fit(tiny_dataset).predict()
        assert preds.shape == (tiny_dataset.num_papers,)
        assert np.all(np.isfinite(preds))
        assert np.all(preds >= 0)
        assert model.val_history  # early stopping tracked something

    def test_bert_text_only(self, tiny_dataset, tiny_random_dataset):
        """BERT sees only text: identical on full and term-rewired data."""
        p_full = BERTRegressor(epochs=30).fit(tiny_dataset).predict()
        p_rand = BERTRegressor(epochs=30).fit(tiny_random_dataset).predict()
        assert np.allclose(p_full, p_rand)

    def test_make_baselines_roster(self):
        roster = make_baselines(dim=8, epochs=2)
        assert len(roster) == 12
        expected = {"BERT", "GAT", "CCP", "CPDF", "metapath2vec", "hin2vec",
                    "R-GCN", "HAN", "HetGNN", "HGT", "MAGNN", "HGCN"}
        assert set(roster) == expected

    def test_gnn_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GAT(tiny_gnn_config()).predict()
