"""Unit + integration tests for the fleet TCP transport (DESIGN §18).

Covers the layers bottom-up: message packing, frame codec, backoff /
jitter schedules (including the seeded heartbeat probe schedule),
fencing and leases, the RPC client/server pair, and the fault-injection
proxy.  The property-based codec fuzzing lives in
``test_transport_codec.py``; whole-trainer TCP parity and router
failover live in ``test_fleet_ha.py``.
"""

import itertools
import socket
import threading
import time
import zlib

import numpy as np
import pytest

import repro.fleet.heartbeat as heartbeat
from repro.fleet.transport import (
    Codec,
    CodecError,
    CallTimeout,
    FaultyTransport,
    FenceRegistry,
    FrameDecoder,
    LeaseTable,
    PeerDead,
    RpcClient,
    RpcError,
    RpcServer,
    backoff_delays,
    pack_message,
    unpack_message,
)
from repro.resilience import faults


# ----------------------------------------------------------------------
# Message packing
# ----------------------------------------------------------------------
class TestPackMessage:
    def test_roundtrip_nested_tree_with_arrays(self):
        grad = np.random.default_rng(3).standard_normal(17)
        msg = {
            "method": "push_result",
            "payload": {
                "grad": grad,
                "counts": np.arange(5, dtype=np.int32),
                "meta": {"loss": 0.25, "tags": ["a", "b"], "ok": True,
                         "none": None},
            },
        }
        out = unpack_message(pack_message(msg))
        assert out["method"] == "push_result"
        assert out["payload"]["meta"] == msg["payload"]["meta"]
        # bit-exact: the whole TCP-vs-shm bitwise-parity story rests here
        assert out["payload"]["grad"].dtype == np.float64
        assert out["payload"]["grad"].tobytes() == grad.tobytes()
        assert np.array_equal(out["payload"]["counts"],
                              msg["payload"]["counts"])

    def test_numpy_scalars_become_python(self):
        out = unpack_message(pack_message({"n": np.int64(7),
                                           "x": np.float64(0.5)}))
        assert out == {"n": 7, "x": 0.5}
        assert type(out["n"]) is int and type(out["x"]) is float

    def test_reserved_key_and_non_str_keys_rejected(self):
        with pytest.raises(CodecError):
            pack_message({"__nd__": 1})
        with pytest.raises(CodecError):
            pack_message({3: "x"})

    def test_unsupported_type_rejected(self):
        with pytest.raises(CodecError):
            pack_message({"f": object()})

    def test_truncated_payload_rejected(self):
        payload = pack_message({"grad": np.ones(8)})
        with pytest.raises(CodecError):
            unpack_message(payload[:-4])

    def test_trailing_garbage_rejected(self):
        payload = pack_message({"x": 1})
        with pytest.raises(CodecError):
            unpack_message(payload + b"\x00\x01")


# ----------------------------------------------------------------------
# Frame codec
# ----------------------------------------------------------------------
class TestFrameCodec:
    def test_roundtrip_byte_at_a_time(self):
        codec = Codec()
        stream = b"".join(
            codec.encode_message({"i": i}, seq) for seq, i in
            enumerate([0, 1, 2]))
        decoder = FrameDecoder()
        frames = []
        for idx in range(len(stream)):
            frames.extend(decoder.feed(stream[idx:idx + 1]))
        assert [unpack_message(f)["i"] for f in frames] == [0, 1, 2]

    def test_crc_corruption_raises(self):
        frame = bytearray(Codec().encode_message({"x": 1}, 0))
        frame[-1] ^= 0xFF
        with pytest.raises(CodecError, match="checksum"):
            FrameDecoder().feed(bytes(frame))

    def test_duplicate_frame_raises(self):
        frame = Codec().encode_message({"x": 1}, 0)
        decoder = FrameDecoder()
        decoder.feed(frame)
        with pytest.raises(CodecError, match="sequence"):
            decoder.feed(frame)

    def test_garbage_prefix_raises_even_before_full_header(self):
        with pytest.raises(CodecError, match="magic"):
            FrameDecoder().feed(b"GET / HTTP/1.1\r\n")

    def test_oversize_length_rejected_without_reading(self):
        codec = Codec(max_frame=64)
        frame = Codec().encode_frame(b"z" * 128, 0)
        with pytest.raises(CodecError, match="cap"):
            FrameDecoder(max_frame=64).feed(frame)
        with pytest.raises(CodecError):
            codec.encode_frame(b"z" * 128, 0)

    def test_poisoned_decoder_stays_poisoned(self):
        decoder = FrameDecoder()
        with pytest.raises(CodecError):
            decoder.feed(b"XX")
        with pytest.raises(CodecError, match="poisoned"):
            decoder.feed(Codec().encode_message({"x": 1}, 0))


# ----------------------------------------------------------------------
# Backoff + the seeded heartbeat probe schedule
# ----------------------------------------------------------------------
class TestBackoff:
    def test_seeded_sequence_is_deterministic_and_capped(self):
        a = list(itertools.islice(backoff_delays(0.05, 1.0, seed=7), 12))
        b = list(itertools.islice(backoff_delays(0.05, 1.0, seed=7), 12))
        assert a == b
        for n, delay in enumerate(a):
            base = min(1.0, 0.05 * 2 ** n)
            assert base * 0.5 <= delay <= base
        assert a[-1] <= 1.0

    def test_distinct_seeds_decorrelate(self):
        a = list(itertools.islice(backoff_delays(0.05, 1.0, seed=1), 8))
        b = list(itertools.islice(backoff_delays(0.05, 1.0, seed=2), 8))
        assert a != b

    def test_invalid_shapes_rejected(self):
        with pytest.raises(ValueError):
            next(backoff_delays(0.0, 1.0))
        with pytest.raises(ValueError):
            next(backoff_delays(0.05, 1.0, jitter=1.5))

    def test_probe_delays_default_seed_is_endpoint_hash(self):
        expected_seed = zlib.crc32(b"10.0.0.9:8443")
        got = list(itertools.islice(
            heartbeat.probe_delays("10.0.0.9", 8443), 10))
        want = list(itertools.islice(
            backoff_delays(0.05, 1.0, seed=expected_seed), 10))
        assert got == want

    def test_wait_healthy_sleeps_exactly_the_seeded_schedule(self, monkeypatch):
        """The timing test that pins the jittered probe schedule."""
        slept = []
        clock = {"t": 0.0}
        monkeypatch.setattr(heartbeat, "probe_once",
                            lambda *a, **k: False)
        monkeypatch.setattr(heartbeat.time, "monotonic",
                            lambda: clock["t"])

        def fake_sleep(seconds):
            slept.append(seconds)
            clock["t"] += seconds

        monkeypatch.setattr(heartbeat.time, "sleep", fake_sleep)
        assert not heartbeat.wait_healthy("127.0.0.1", 9999, deadline=6.0)
        seed = zlib.crc32(b"127.0.0.1:9999")
        expected = list(itertools.islice(
            backoff_delays(0.05, 1.0, seed=seed), len(slept)))
        assert slept == expected
        assert len(slept) >= 8  # several doublings happened under the cap


# ----------------------------------------------------------------------
# Fencing + leases
# ----------------------------------------------------------------------
class TestFenceRegistry:
    def test_generations_are_monotonic_and_stale_is_logged(self):
        fences = FenceRegistry()
        assert fences.current("shard-0") == 0
        assert fences.check("shard-0", 0, "push")
        assert fences.advance("shard-0") == 1
        assert fences.advance("shard-0") == 2
        assert not fences.check("shard-0", 1, "push_result")
        assert fences.check("shard-0", 2)
        [rejection] = fences.rejections
        assert rejection == {"member": "shard-0", "stale_gen": 1,
                             "current_gen": 2, "context": "push_result"}

    def test_members_are_independent(self):
        fences = FenceRegistry()
        fences.advance("a")
        assert fences.check("b", 0)
        assert not fences.check("a", 0)


class TestLeaseTable:
    def test_expiry_drains_only_lapsed_members(self):
        clock = {"t": 0.0}
        leases = LeaseTable(ttl=1.0, clock=lambda: clock["t"])
        leases.grant("w0")
        leases.grant("w1")
        clock["t"] = 0.6
        leases.renew("w1")
        clock["t"] = 1.2
        assert leases.expired() == ["w0"]
        assert leases.members() == ["w1"]
        assert leases.expired() == []  # w0 already drained
        assert not leases.held("w0") and leases.held("w1")

    def test_remaining_and_validation(self):
        clock = {"t": 0.0}
        leases = LeaseTable(ttl=2.0, clock=lambda: clock["t"])
        assert leases.remaining("ghost") is None
        leases.grant("w")
        clock["t"] = 0.5
        assert leases.remaining("w") == pytest.approx(1.5)
        with pytest.raises(ValueError):
            LeaseTable(ttl=0.0)


# ----------------------------------------------------------------------
# RPC client/server
# ----------------------------------------------------------------------
@pytest.fixture()
def echo_server():
    calls = {"n": 0}

    def echo(payload):
        calls["n"] += 1
        out = dict(payload)
        if "vec" in out:
            out["vec"] = out["vec"] * 2.0
        return out

    def slow(payload):
        time.sleep(payload.get("seconds", 1.0))
        return {"done": True}

    def boom(payload):
        raise ValueError("injected handler fault")

    server = RpcServer({"echo": echo, "slow": slow, "boom": boom})
    host, port = server.start()
    try:
        yield server, host, port, calls
    finally:
        server.stop()


class TestRpc:
    def test_echo_roundtrip_with_arrays(self, echo_server):
        server, host, port, _calls = echo_server
        client = RpcClient(host, port, jitter_seed=0)
        try:
            out = client.call("echo", {"vec": np.arange(4.0), "tag": "t"})
            assert out["tag"] == "t"
            assert np.array_equal(out["vec"], np.arange(4.0) * 2.0)
        finally:
            client.close()
        assert server.counters["requests"] >= 1
        assert server.counters["codec_errors"] == 0

    def test_handler_error_is_rpc_error_and_connection_survives(
            self, echo_server):
        _server, host, port, _calls = echo_server
        client = RpcClient(host, port, jitter_seed=0)
        try:
            with pytest.raises(RpcError, match="injected handler fault"):
                client.call("boom")
            with pytest.raises(RpcError, match="unknown method"):
                client.call("nope")
            assert client.call("echo", {"x": 1}) == {"x": 1}
        finally:
            client.close()

    def test_call_timeout_then_stale_response_discarded(self, echo_server):
        _server, host, port, _calls = echo_server
        client = RpcClient(host, port, jitter_seed=0)
        try:
            t0 = time.monotonic()
            with pytest.raises(CallTimeout):
                client.call("slow", {"seconds": 1.0}, deadline=0.25)
            assert time.monotonic() - t0 < 0.9
            # The late answer to the timed-out call must not be
            # mis-delivered as the answer to this one.
            out = client.call("slow", {"seconds": 0.0}, deadline=5.0)
            assert out == {"done": True}
            assert client.stats["timeouts"] == 1
            assert client.stats["stale_responses"] >= 1
        finally:
            client.close()

    def test_peer_dead_is_bounded(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        client = RpcClient("127.0.0.1", port, jitter_seed=0)
        t0 = time.monotonic()
        with pytest.raises(PeerDead):
            client.call("echo", deadline=0.4)
        assert time.monotonic() - t0 < 2.0

    def test_reconnect_and_resend_after_server_restart(self, echo_server):
        server, host, port, _calls = echo_server
        client = RpcClient(host, port, jitter_seed=0)
        try:
            assert client.call("echo", {"x": 1}) == {"x": 1}
            server.stop()
            restarted = RpcServer(server.handlers, host=host, port=port)
            restarted.start()
            try:
                assert client.call("echo", {"x": 2},
                                   deadline=5.0) == {"x": 2}
            finally:
                restarted.stop()
        finally:
            client.close()


# ----------------------------------------------------------------------
# Fault-injection proxy
# ----------------------------------------------------------------------
@pytest.fixture()
def proxied_echo(echo_server):
    _server, host, port, calls = echo_server
    proxy = FaultyTransport((host, port), link="test-link")
    phost, pport = proxy.start()
    client = RpcClient(phost, pport, jitter_seed=0)
    try:
        yield proxy, client, calls
    finally:
        client.close()
        proxy.stop()


class TestFaultyTransport:
    def test_passthrough_preserves_payloads(self, proxied_echo):
        proxy, client, _calls = proxied_echo
        vec = np.random.default_rng(0).standard_normal(9)
        out = client.call("echo", {"vec": vec})
        assert out["vec"].tobytes() == (vec * 2.0).tobytes()
        assert proxy.counters["forwarded"] >= 2
        assert proxy.counters["dropped"] == 0

    def test_dropped_request_times_out_then_recovers(self, proxied_echo):
        proxy, client, _calls = proxied_echo
        with faults.drop_frame("echo", link="test-link", direction="up"):
            with pytest.raises(CallTimeout):
                client.call("echo", {"x": 1}, deadline=0.4)
            # times=1: the retry crosses untouched.
            assert client.call("echo", {"x": 2},
                               deadline=5.0) == {"x": 2}
        assert proxy.counters["dropped"] == 1

    def test_duplicated_frame_rejected_then_resent(self, proxied_echo):
        proxy, client, _calls = proxied_echo
        with faults.dup_frame("echo", link="test-link", direction="up"):
            # The server's decoder sees a replayed sequence number,
            # severs the stream, and the client reconnects + re-sends.
            assert client.call("echo", {"x": 3},
                               deadline=5.0) == {"x": 3}
        assert proxy.counters["duplicated"] == 1

    def test_partition_latches_until_healed(self, proxied_echo):
        proxy, client, _calls = proxied_echo
        assert client.call("echo", {"x": 0}) == {"x": 0}
        proxy.set_partitioned(True)
        with pytest.raises((CallTimeout, PeerDead)):
            client.call("echo", {"x": 1}, deadline=0.5)
        proxy.set_partitioned(False)
        assert client.call("echo", {"x": 2}, deadline=5.0) == {"x": 2}

    def test_partition_at_method_trips_on_the_exact_frame(
            self, proxied_echo):
        proxy, client, _calls = proxied_echo
        with faults.partition_at("slow", link="test-link"):
            assert client.call("echo", {"x": 1}) == {"x": 1}
            assert not proxy.partitioned
            with pytest.raises((CallTimeout, PeerDead)):
                client.call("slow", {"seconds": 0.0}, deadline=0.5)
            assert proxy.partitioned
        proxy.set_partitioned(False)
        assert client.call("echo", {"x": 2}, deadline=5.0) == {"x": 2}
