"""InferenceEngine: exact serving, micro-batching, LRU, ranking, cold start."""

import numpy as np
import pytest

from repro.core import CATEHGN
from repro.eval.runner import default_cate_config
from repro.serve import InferenceEngine, LRUCache, restore_catehgn
from repro.tensor import reset_tape_node_counter, tape_nodes_created


@pytest.fixture(scope="module")
def fitted(tiny_dataset):
    config = default_cate_config(dim=16, seed=0, outer_iters=2, mini_iters=2)
    return CATEHGN(config).fit(tiny_dataset)


@pytest.fixture(scope="module")
def engine(fitted, tmp_path_factory):
    path = fitted.save_checkpoint(tmp_path_factory.mktemp("ckpt") / "model")
    return InferenceEngine.from_checkpoint(path, cache_size=32,
                                           micro_batch=17)


# ----------------------------------------------------------------------
class TestLRUCache:
    def test_eviction_order(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == (True, 1)  # refreshes "a"
        cache.put("c", 3)                   # evicts "b"
        assert cache.get("b")[0] is False
        assert cache.get("a") == (True, 1)
        assert cache.get("c") == (True, 3)

    def test_hit_rate(self):
        cache = LRUCache(4)
        cache.put(1, "x")
        cache.get(1)
        cache.get(2)
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_zero_capacity_disables(self):
        cache = LRUCache(0)
        cache.put(1, "x")
        assert cache.get(1)[0] is False


# ----------------------------------------------------------------------
class TestPrediction:
    def test_bulk_matches_estimator_bitwise(self, fitted, engine):
        reference = fitted.predict()
        served = engine.predict(np.arange(engine.num_papers))
        assert np.array_equal(reference, served)

    def test_predict_all_matches_estimator_bitwise(self, fitted, engine):
        assert np.array_equal(fitted.predict(), engine.predict_all())

    def test_micro_batching_is_invisible(self, fitted, engine):
        # micro_batch=17 forces several chunks over 40 ids; results must
        # be independent of the chunking.
        ids = np.arange(40)
        assert np.array_equal(fitted.predict()[ids], engine.predict(ids))

    def test_cache_hits_on_repeat(self, engine):
        engine.cache.clear()
        first = engine.predict([2, 4, 6])
        hits_before = engine.cache.hits
        second = engine.predict([2, 4, 6])
        assert engine.cache.hits == hits_before + 3
        assert np.array_equal(first, second)

    def test_out_of_range_rejected(self, engine):
        with pytest.raises(IndexError):
            engine.predict([engine.num_papers])
        with pytest.raises(IndexError):
            engine.predict([-1])

    def test_serving_is_tape_free(self, engine):
        engine.cache.clear()
        reset_tape_node_counter()
        engine.predict(np.arange(25))
        engine.rank("author", k=5)
        assert tape_nodes_created() == 0


# ----------------------------------------------------------------------
class TestRanking:
    def test_topk_sorted_and_sized(self, engine):
        ranking = engine.rank("paper", k=5)
        assert len(ranking) == 5
        scores = [r["score"] for r in ranking]
        assert scores == sorted(scores, reverse=True)

    def test_matches_node_impacts(self, fitted, engine):
        impacts = fitted.node_impacts("author")
        best = int(np.argmax(impacts))
        assert engine.rank("author", k=1)[0]["id"] == best

    def test_cluster_scoped(self, fitted, engine):
        impacts = fitted.node_impacts("venue", cluster=1)
        best = int(np.argmax(impacts))
        assert engine.rank("venue", k=1, cluster=1)[0]["id"] == best

    def test_unknown_type_rejected(self, engine):
        with pytest.raises(KeyError):
            engine.rank("galaxy")

    def test_k_clamped(self, engine):
        assert len(engine.rank("venue", k=10_000)) == \
            engine.batch.num_nodes["venue"]


# ----------------------------------------------------------------------
class TestColdStart:
    def test_unseen_title_scores(self, engine):
        score = engine.score_title("heterogeneous graph neural networks "
                                   "for citation prediction")
        assert np.isfinite(score) and score >= 0.0

    def test_deterministic(self, engine):
        a = engine.score_title("stream processing over data systems")
        b = engine.score_title("stream processing over data systems")
        assert a == b

    def test_accepts_pretokenized(self, engine):
        a = engine.score_title(["data", "mining"])
        b = engine.score_title("data mining")
        assert a == b

    def test_out_of_vocabulary_title(self, engine):
        # Fully unknown tokens -> zero embedding -> still a valid score.
        score = engine.score_title("zzzxqj wvvkpt")
        assert np.isfinite(score) and score >= 0.0


# ----------------------------------------------------------------------
def test_info_shape(engine, tiny_dataset):
    info = engine.info()
    assert info["num_papers"] == tiny_dataset.num_papers
    assert info["cold_start"] is True
    assert info["freeze_seconds"] > 0
