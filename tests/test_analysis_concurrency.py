"""Static lock-discipline analyzer (A001-A005): seeded violations caught,
clean code passes, annotations and noqa suppression honoured."""

import subprocess
import sys

import pytest

from repro.analysis.concurrency import ARULES, analyze_paths, analyze_sources
from repro.analysis.concurrency.static import main

# ----------------------------------------------------------------------
# Fixture sources
# ----------------------------------------------------------------------
A001_BAD = '''\
import threading

class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0

    def bump(self):
        with self._lock:
            self._count += 1

    def dirty_read(self):
        return self._count                    # line 13: unlocked read

    def dirty_write(self):
        self._count = 0                       # line 16: unlocked write
'''

A001_ANNOTATED = '''\
import threading

class Pinned:
    def __init__(self):
        self._lock = threading.Lock()
        self._data = {}  # guarded-by: _lock
        self._hint = None  # not-guarded: best-effort cache, torn reads fine

    def read(self):
        return self._data.get(1)              # line 10: violates the pin

    def hint(self):
        self._hint = 3                        # opted out: no violation
'''

A001_BAD_ANNOTATION = '''\
import threading

class Mispinned:
    def __init__(self):
        self._lock = threading.Lock()
        self._data = {}  # guarded-by: _mutex
'''

A001_NEVER_LOCKED_WRITE = '''\
import threading

class Sloppy:
    def __init__(self):
        self._lock = threading.Lock()
        self._total = 0

    def add(self, x):
        self._total += x                      # line 9: never locked write
'''

A001_CLEAN = '''\
import threading

class Tidy:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = []
        self.capacity = 8                     # init-only: not a candidate

    def push(self, x):
        with self._lock:
            self._items.append(x)
            self._items = self._items[-self.capacity:]

    def size(self):
        with self._lock:
            return len(self._items)

    def _drop_locked(self):
        # *_locked convention: caller holds the lock.
        self._items.clear()
'''

A002_BAD = '''\
import threading

class Ledger:
    def __init__(self, journal):
        self._lock = threading.Lock()
        self.journal = Journal(self)

    def post(self):
        with self._lock:
            self.journal.append()             # Ledger._lock -> Journal._lock

class Journal:
    def __init__(self, ledger):
        self._lock = threading.Lock()
        self.ledger = Ledger(self)

    def append(self):
        with self._lock:
            pass

    def replay(self):
        with self._lock:
            self.ledger.post()                # Journal._lock -> Ledger._lock
'''

A002_TWO_LOCK_INVERSION = '''\
import threading

class Inverted:
    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()

    def forward(self):
        with self._a:
            with self._b:
                pass

    def backward(self):
        with self._b:
            with self._a:
                pass
'''

A002_CLEAN_ORDERED = '''\
import threading

class Ordered:
    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()

    def one(self):
        with self._a:
            with self._b:
                pass

    def two(self):
        with self._a:
            with self._b:
                pass
'''

A003_BAD = '''\
import subprocess
import threading
import time

class Flusher:
    def __init__(self):
        self._lock = threading.Lock()
        self._worker = threading.Thread(target=print)

    def nap(self):
        with self._lock:
            time.sleep(0.5)                   # line 12

    def spill(self, path):
        with self._lock:
            with open(path) as fh:            # line 16
                return fh.read()

    def spawn(self):
        with self._lock:
            subprocess.run(["true"])          # line 21

    def reap(self):
        with self._lock:
            self._worker.join()               # line 25
'''

A003_CLEAN = '''\
import threading
import time

class Polite:
    def __init__(self):
        self._lock = threading.Lock()
        self._queue = []

    def drain(self):
        with self._lock:
            batch = list(self._queue)
            self._queue = []
        time.sleep(0.01)                      # outside the lock: fine
        return batch
'''

A004_BAD_DIRECT = '''\
import threading

class Reent:
    def __init__(self):
        self._lock = threading.Lock()

    def outer(self):
        with self._lock:
            with self._lock:                  # line 9: direct re-acquire
                pass
'''

A004_BAD_SELF_CALL = '''\
import threading

class SelfCall:
    def __init__(self):
        self._lock = threading.Lock()
        self._n = 0

    def get(self):
        with self._lock:
            return self._n

    def double(self):
        with self._lock:
            return self.get() * 2             # line 14: re-acquire via call
'''

A004_RLOCK_OK = '''\
import threading

class Nested:
    def __init__(self):
        self._lock = threading.RLock()
        self._n = 0

    def get(self):
        with self._lock:
            return self._n

    def double(self):
        with self._lock:
            return self.get() * 2             # RLock: legal re-entry
'''


A005_BAD = """\
import asyncio
import subprocess
import time


async def handler(reader, writer):
    time.sleep(0.1)
    with open("/tmp/log") as fh:
        data = fh.read()
    subprocess.run(["true"])
    await asyncio.sleep(0)
    return data
"""

A005_CLEAN = """\
import asyncio
import time


async def handler(loop):
    await asyncio.sleep(0.1)
    return await loop.run_in_executor(None, time.sleep, 0.1)


def sync_helper():
    time.sleep(0.1)  # not async: A005 does not apply
"""

A005_NESTED_SYNC = """\
import time


async def outer():
    def blocking_callback():
        time.sleep(0.1)  # runs on an executor thread, not the loop
    return blocking_callback
"""


def analyze_str(*sources, rules=None):
    return analyze_sources(
        [(src, f"fixture_{i}.py") for i, src in enumerate(sources)],
        rules=rules,
    )


def rules_of(violations):
    return sorted({v.rule for v in violations})


# ----------------------------------------------------------------------
# A001
# ----------------------------------------------------------------------
class TestA001:
    def test_inferred_guard_flags_dirty_access(self):
        a001 = [v for v in analyze_str(A001_BAD) if v.rule == "A001"]
        assert sorted(v.line for v in a001) == [13, 16]
        assert all("_count" in v.message for v in a001)
        assert any("read" in v.message for v in a001)
        assert any("written" in v.message for v in a001)

    def test_guarded_by_pin_and_not_guarded_opt_out(self):
        a001 = [v for v in analyze_str(A001_ANNOTATED) if v.rule == "A001"]
        assert [v.line for v in a001] == [10]
        assert "_data" in a001[0].message
        # _hint is opted out: no violation mentions it.
        assert not any("_hint" in v.message for v in a001)

    def test_guarded_by_unknown_lock_is_flagged(self):
        a001 = analyze_str(A001_BAD_ANNOTATION)
        assert rules_of(a001) == ["A001"]
        assert "_mutex" in a001[0].message

    def test_never_locked_write_flagged(self):
        a001 = [v for v in analyze_str(A001_NEVER_LOCKED_WRITE)
                if v.rule == "A001"]
        assert [v.line for v in a001] == [9]
        assert "not-guarded" in a001[0].message  # suggests the opt-out

    def test_clean_class_passes(self):
        assert analyze_str(A001_CLEAN) == []

    def test_lockless_class_ignored(self):
        src = "class Plain:\n    def set(self, x):\n        self.x = x\n"
        assert analyze_str(src) == []

    def test_noqa_suppresses(self):
        suppressed = A001_BAD.replace(
            "return self._count",
            "return self._count  # noqa: A001",
        ).replace(
            "self._count = 0  ",
            "self._count = 0  # noqa: A001",
        )
        # Only the __init__ assignment keeps its bare form; both method
        # sites carry the noqa and must be silent.
        assert [v for v in analyze_str(suppressed) if v.rule == "A001"] == []

    def test_noqa_a_rule_does_not_leak_to_lint(self):
        from repro.analysis.lint import lint_sources

        src = ("import numpy as np\n"
               "x = np.random.rand()  # noqa: A001\n")
        violations, _ = lint_sources(src, "f.py")
        assert [v.rule for v in violations] == ["R002"]


# ----------------------------------------------------------------------
# A002
# ----------------------------------------------------------------------
class TestA002:
    def test_cross_class_cycle_detected(self):
        a002 = [v for v in analyze_str(A002_BAD) if v.rule == "A002"]
        assert len(a002) == 1
        assert "Ledger._lock" in a002[0].message
        assert "Journal._lock" in a002[0].message

    def test_two_lock_inversion_detected(self):
        a002 = [v for v in analyze_str(A002_TWO_LOCK_INVERSION)
                if v.rule == "A002"]
        assert len(a002) == 1
        assert "Inverted._a" in a002[0].message

    def test_consistent_order_passes(self):
        assert [v for v in analyze_str(A002_CLEAN_ORDERED)
                if v.rule == "A002"] == []

    def test_cycle_spanning_files_detected(self):
        half_a, half_b = A002_BAD.split("class Journal:")
        a002 = analyze_str(
            half_a, "class Journal:" + half_b, rules={"A002"}
        )
        assert len(a002) == 1


# ----------------------------------------------------------------------
# A003
# ----------------------------------------------------------------------
class TestA003:
    def test_blocking_calls_under_lock_flagged(self):
        a003 = [v for v in analyze_str(A003_BAD) if v.rule == "A003"]
        assert sorted(v.line for v in a003) == [12, 16, 21, 25]
        joined = " ".join(v.message for v in a003)
        assert "time.sleep" in joined
        assert "open" in joined
        assert "subprocess.run" in joined
        assert "Thread.join" in joined

    def test_blocking_outside_lock_passes(self):
        assert [v for v in analyze_str(A003_CLEAN) if v.rule == "A003"] == []


# ----------------------------------------------------------------------
# A004
# ----------------------------------------------------------------------
class TestA004:
    def test_direct_nested_lock_flagged(self):
        a004 = [v for v in analyze_str(A004_BAD_DIRECT) if v.rule == "A004"]
        assert [v.line for v in a004] == [9]

    def test_reacquire_via_self_call_flagged(self):
        a004 = [v for v in analyze_str(A004_BAD_SELF_CALL)
                if v.rule == "A004"]
        assert [v.line for v in a004] == [14]
        assert "SelfCall.get" in a004[0].message

    def test_rlock_reentry_legal(self):
        assert [v for v in analyze_str(A004_RLOCK_OK)
                if v.rule == "A004"] == []


# ----------------------------------------------------------------------
# A005
# ----------------------------------------------------------------------
A006_BAD = """\
import subprocess


def reap(proc, conn, thread):
    thread.join()
    proc.wait()
    msg = conn.recv()
    out, err = proc.communicate()
    return msg, out
"""

A006_CLEAN = """\
import asyncio
import os


def reap(proc, conn, thread, stop):
    thread.join(timeout=10)
    proc.wait(timeout=10)
    stop.wait(0.5)
    if conn.poll(5.0):
        msg = conn.recv()  # noqa: A006 — bounded by the poll above
    out, err = proc.communicate(timeout=10)
    parts = ", ".join(["a", "b"])
    path = os.path.join("/tmp", "x")
    data = sock.recv(4096)
    return msg, out, parts, path, data


async def waiter(event):
    await event.wait()
    await asyncio.wait_for(event.wait(), 5.0)
"""


class TestA006:
    def test_unbounded_waits_flagged(self):
        a006 = [v for v in analyze_str(A006_BAD) if v.rule == "A006"]
        assert sorted(v.line for v in a006) == [5, 6, 7, 8]
        joined = " ".join(v.message for v in a006)
        assert ".join" in joined and ".wait" in joined
        assert ".recv" in joined and ".communicate" in joined
        assert all("deadline" in v.message for v in a006)

    def test_bounded_awaited_and_string_joins_clean(self):
        assert [v for v in analyze_str(A006_CLEAN)
                if v.rule == "A006"] == []

    def test_noqa_suppresses(self):
        suppressed = "\n".join(
            line + "  # noqa: A006" if line.strip() else line
            for line in A006_BAD.splitlines())
        assert [v for v in analyze_str(suppressed)
                if v.rule == "A006"] == []

    def test_select_only_a006(self):
        only = analyze_str(A006_BAD, A001_BAD, rules={"A006"})
        assert rules_of(only) == ["A006"]


class TestA005:
    def test_blocking_in_async_def_flagged(self):
        a005 = [v for v in analyze_str(A005_BAD) if v.rule == "A005"]
        assert sorted(v.line for v in a005) == [7, 8, 10]
        joined = " ".join(v.message for v in a005)
        assert "time.sleep" in joined
        assert "open" in joined
        assert "subprocess.run" in joined
        assert all("handler" in v.message for v in a005)
        assert all("run_in_executor" in v.message for v in a005)

    def test_awaited_and_dispatched_clean(self):
        assert [v for v in analyze_str(A005_CLEAN) if v.rule == "A005"] == []

    def test_nested_sync_def_exempt(self):
        assert [v for v in analyze_str(A005_NESTED_SYNC)
                if v.rule == "A005"] == []

    def test_noqa_suppresses(self):
        suppressed = A005_BAD.replace(
            "    time.sleep(0.1)",
            "    time.sleep(0.1)  # noqa: A005",
        ).replace(
            '    with open("/tmp/log") as fh:',
            '    with open("/tmp/log") as fh:  # noqa: A005',
        ).replace(
            '    subprocess.run(["true"])',
            '    subprocess.run(["true"])  # noqa: A005',
        )
        assert [v for v in analyze_str(suppressed) if v.rule == "A005"] == []

    def test_select_only_a005(self):
        only = analyze_str(A005_BAD, A001_BAD, rules={"A005"})
        assert rules_of(only) == ["A005"]


# ----------------------------------------------------------------------
# A007
# ----------------------------------------------------------------------
A007_BAD = """\
import socket
import time


def dial(host, port):
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.connect((host, port))
    return sock


def retry(conn):
    delay = 0.05
    while True:
        try:
            return conn.ping()
        except OSError:
            time.sleep(delay)
            delay *= 2
"""

A007_CLEAN = """\
import socket
import time


def dial(host, port):
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.settimeout(5.0)
    sock.connect((host, port))
    return sock


def dial_with(host):
    with socket.socket() as s:
        s.settimeout(1.0)
        s.connect((host, 80))


class Client:
    def connect(self):
        self._sock = socket.socket()
        self._sock.settimeout(2.0)


def retry_inline_cap(conn):
    delay = 0.05
    while True:
        try:
            return conn.ping()
        except OSError:
            time.sleep(min(delay, 1.0))
            delay *= 2


def retry_reassign_cap(conn, stop):
    delay = 0.05
    while not stop.wait(timeout=min(delay, 1.0)):
        conn.ping()
        delay *= 2


def not_a_backoff(items):
    total = 1
    for item in items:
        total *= 2
    return total
"""


class TestA007:
    def test_socket_and_uncapped_backoff_flagged(self):
        a007 = [v for v in analyze_str(A007_BAD) if v.rule == "A007"]
        assert sorted(v.line for v in a007) == [6, 18]
        joined = " ".join(v.message for v in a007)
        assert "settimeout" in joined
        assert "cap" in joined and "backoff_delays" in joined

    def test_timeouts_and_caps_clean(self):
        assert [v for v in analyze_str(A007_CLEAN)
                if v.rule == "A007"] == []

    def test_noqa_suppresses(self):
        suppressed = "\n".join(
            line + "  # noqa: A007" if line.strip() else line
            for line in A007_BAD.splitlines())
        assert [v for v in analyze_str(suppressed)
                if v.rule == "A007"] == []

    def test_select_only_a007(self):
        only = analyze_str(A007_BAD, A001_BAD, rules={"A007"})
        assert rules_of(only) == ["A007"]
        assert len(only) == 2


# ----------------------------------------------------------------------
# Driver / CLI
# ----------------------------------------------------------------------
class TestDriver:
    def test_rule_catalogue(self):
        assert set(ARULES) == {"A001", "A002", "A003", "A004", "A005",
                               "A006", "A007"}

    def test_select_subset(self):
        only = analyze_str(A001_BAD, A004_BAD_DIRECT, rules={"A004"})
        assert rules_of(only) == ["A004"]

    def test_syntax_error_reported_not_crash(self):
        violations = analyze_str("def f(:\n")
        assert violations and violations[0].rule == "A000"

    def test_analyze_paths_over_tree(self, tmp_path):
        (tmp_path / "bad.py").write_text(A004_BAD_DIRECT)
        (tmp_path / "good.py").write_text(A001_CLEAN)
        violations = analyze_paths([str(tmp_path)])
        assert rules_of(violations) == ["A004"]

    def test_cli_exit_codes_and_json(self, tmp_path, capsys):
        import json

        bad = tmp_path / "bad.py"
        bad.write_text(A003_BAD)
        good = tmp_path / "good.py"
        good.write_text(A003_CLEAN)
        assert main([str(good)]) == 0
        assert main([str(bad), "--format", "json"]) == 1
        report = json.loads(capsys.readouterr().out)
        # The unbounded Thread.join is both a blocking-under-lock (A003)
        # and a missing-deadline wait (A006).
        assert report["count"] == 5
        assert {v["rule"] for v in report["violations"]} == {"A003", "A006"}

    def test_cli_ignore(self, tmp_path):
        f = tmp_path / "bad.py"
        f.write_text(A003_BAD)
        assert main([str(f), "--ignore", "A003,A006"]) == 0

    def test_module_entrypoint_runs(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(A004_BAD_DIRECT)
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis.concurrency", str(bad)],
            capture_output=True, text=True,
        )
        assert proc.returncode == 1
        assert "A004" in proc.stdout

    def test_serve_tree_is_clean(self):
        assert analyze_paths(["src/repro/serve"]) == []
