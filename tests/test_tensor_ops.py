"""Unit tests for functional tensor ops (graph primitives, compositions)."""

import numpy as np
import pytest

from repro.tensor import (
    Tensor,
    circular_convolution,
    circular_correlation,
    concatenate,
    dropout,
    gather,
    log_softmax,
    numerical_gradient,
    segment_mean,
    segment_softmax,
    segment_sum,
    softmax,
    stack,
    where,
)
from .test_tensor_core import gradcheck


class TestConcatStack:
    def test_concatenate_values(self):
        a, b = Tensor([[1.0], [2.0]]), Tensor([[3.0], [4.0]])
        assert np.allclose(concatenate([a, b], axis=1).data, [[1, 3], [2, 4]])

    def test_concatenate_grad_routing(self, rng):
        a = Tensor(rng.normal(size=(3, 2)), requires_grad=True)
        b = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        gradcheck(lambda: (concatenate([a, b], axis=1) ** 2).sum(), a, b)

    def test_concatenate_axis0_grad(self, rng):
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        gradcheck(lambda: (concatenate([a, b], axis=0) ** 2).sum(), a, b)

    def test_stack_scalars(self):
        xs = [Tensor(float(i), requires_grad=True) for i in range(3)]
        out = stack(xs, axis=0)
        assert out.shape == (3,)
        (out * Tensor([1.0, 2.0, 3.0])).sum().backward()
        assert [x.grad for x in xs] == [1.0, 2.0, 3.0]


class TestGatherSegments:
    def test_gather_values(self):
        x = Tensor(np.arange(12.0).reshape(4, 3))
        assert np.allclose(gather(x, np.array([3, 0])).data,
                           [[9, 10, 11], [0, 1, 2]])

    def test_gather_grad_sums_duplicates(self):
        x = Tensor(np.zeros((2, 2)), requires_grad=True)
        out = gather(x, np.array([0, 0, 1])).sum()
        out.backward()
        assert np.allclose(x.grad, [[2, 2], [1, 1]])

    def test_segment_sum_values(self):
        x = Tensor(np.ones((4, 2)))
        out = segment_sum(x, np.array([0, 1, 1, 1]), 3)
        assert np.allclose(out.data, [[1, 1], [3, 3], [0, 0]])

    def test_segment_sum_grad(self, rng):
        x = Tensor(rng.normal(size=(5, 2)), requires_grad=True)
        seg = np.array([0, 0, 1, 2, 2])
        gradcheck(lambda: (segment_sum(x, seg, 3) ** 2).sum(), x)

    def test_segment_mean_empty_segment_is_zero(self):
        x = Tensor(np.ones((2, 2)))
        out = segment_mean(x, np.array([0, 0]), 2)
        assert np.allclose(out.data[1], 0.0)

    def test_segment_mean_grad(self, rng):
        x = Tensor(rng.normal(size=(5, 2)), requires_grad=True)
        seg = np.array([0, 0, 0, 1, 1])
        gradcheck(lambda: (segment_mean(x, seg, 2) ** 2).sum(), x)

    def test_segment_softmax_rows_sum_to_one(self, rng):
        scores = Tensor(rng.normal(size=7))
        seg = np.array([0, 0, 0, 1, 1, 2, 2])
        out = segment_softmax(scores, seg, 3).data
        for s in range(3):
            assert np.isclose(out[seg == s].sum(), 1.0)

    def test_segment_softmax_2d_heads(self, rng):
        scores = Tensor(rng.normal(size=(6, 3)))
        seg = np.array([0, 0, 1, 1, 1, 1])
        out = segment_softmax(scores, seg, 2).data
        assert np.allclose(out[:2].sum(axis=0), 1.0)
        assert np.allclose(out[2:].sum(axis=0), 1.0)

    def test_segment_softmax_grad(self, rng):
        scores = Tensor(rng.normal(size=6), requires_grad=True)
        seg = np.array([0, 0, 1, 1, 1, 1])
        w = Tensor(rng.normal(size=6))
        gradcheck(lambda: (segment_softmax(scores, seg, 2) * w).sum(), scores)

    def test_segment_softmax_large_scores_stable(self):
        scores = Tensor(np.array([500.0, 502.0, -400.0]))
        out = segment_softmax(scores, np.array([0, 0, 1]), 2).data
        assert np.all(np.isfinite(out))


class TestSoftmax:
    def test_softmax_rows(self, rng):
        x = Tensor(rng.normal(size=(4, 5)))
        out = softmax(x, axis=1).data
        assert np.allclose(out.sum(axis=1), 1.0)

    def test_softmax_grad(self, rng):
        x = Tensor(rng.normal(size=(2, 4)), requires_grad=True)
        w = Tensor(rng.normal(size=(2, 4)))
        gradcheck(lambda: (softmax(x, axis=1) * w).sum(), x)

    def test_log_softmax_consistent(self, rng):
        x = Tensor(rng.normal(size=(3, 4)))
        assert np.allclose(log_softmax(x, axis=1).data,
                           np.log(softmax(x, axis=1).data), atol=1e-8)


class TestCircular:
    def test_correlation_matches_definition(self, rng):
        a, b = rng.normal(size=5), rng.normal(size=5)
        expected = np.array(
            [sum(a[i] * b[(i + k) % 5] for i in range(5)) for k in range(5)]
        )
        out = circular_correlation(Tensor(a), Tensor(b)).data
        assert np.allclose(out, expected)

    def test_convolution_matches_definition(self, rng):
        a, b = rng.normal(size=5), rng.normal(size=5)
        expected = np.array(
            [sum(a[i] * b[(k - i) % 5] for i in range(5)) for k in range(5)]
        )
        out = circular_convolution(Tensor(a), Tensor(b)).data
        assert np.allclose(out, expected)

    def test_correlation_grad_2d(self, rng):
        a = Tensor(rng.normal(size=(3, 6)), requires_grad=True)
        b = Tensor(rng.normal(size=(3, 6)), requires_grad=True)
        gradcheck(lambda: (circular_correlation(a, b) ** 2).sum(), a, b)

    def test_convolution_grad_2d(self, rng):
        a = Tensor(rng.normal(size=(3, 6)), requires_grad=True)
        b = Tensor(rng.normal(size=(3, 6)), requires_grad=True)
        gradcheck(lambda: (circular_convolution(a, b) ** 2).sum(), a, b)

    def test_correlation_broadcast_vector_grad(self, rng):
        a = Tensor(rng.normal(size=(4, 6)), requires_grad=True)
        b = Tensor(rng.normal(size=6), requires_grad=True)
        gradcheck(lambda: (circular_correlation(a, b) ** 2).sum(), a, b)


class TestDropoutWhere:
    def test_dropout_eval_is_identity(self, rng):
        x = Tensor(np.ones((4, 4)))
        assert dropout(x, 0.5, rng, training=False) is x

    def test_dropout_zero_rate_is_identity(self, rng):
        x = Tensor(np.ones((4, 4)))
        assert dropout(x, 0.0, rng, training=True) is x

    def test_dropout_preserves_expectation(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((200, 200)))
        out = dropout(x, 0.3, rng).data
        assert abs(out.mean() - 1.0) < 0.02

    def test_where_selects_and_routes_grads(self):
        cond = np.array([True, False, True])
        a = Tensor([1.0, 2.0, 3.0], requires_grad=True)
        b = Tensor([10.0, 20.0, 30.0], requires_grad=True)
        out = where(cond, a, b)
        assert np.allclose(out.data, [1, 20, 3])
        out.sum().backward()
        assert np.allclose(a.grad, [1, 0, 1])
        assert np.allclose(b.grad, [0, 1, 0])
