"""Degraded-mode serving: breaker, fallback chain, hot-reload gates.

Covers DESIGN §13's serving half with exact-count assertions:

- :class:`CircuitBreaker` state machine under an injectable clock
  (closed → open → half-open probe → closed/re-open), single probe
  token, trip-once under 8-thread failure bursts;
- :class:`ServingRuntime` fallback chain model → cache → prior with
  ``source``/``degraded`` tagging, client errors never moving the
  breaker, deadline accounting;
- HTTP surface: 200-from-prior under engine fault (zero 5xx), breaker
  state in ``/healthz``, exact fallback counters in ``/metrics``;
- hot reload shadow-validation gates: golden-parity failure and
  contract failure each leave the old engine serving.
"""

import json
import shutil
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.serve import (
    CircuitBreaker,
    LRUCache,
    ReloadRejected,
    ServiceMetrics,
    ServingRuntime,
    make_server,
)
from repro.serve.breaker import CLOSED, HALF_OPEN, OPEN


# ----------------------------------------------------------------------
# Deterministic fakes
# ----------------------------------------------------------------------
class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


class FakePrior:
    """Prior head stub: constant answer, call counting."""

    def __init__(self, value: float = 7.0) -> None:
        self.value = value
        self.calls = 0

    def predict(self, ids):
        self.calls += 1
        return np.full(len(np.asarray(ids).reshape(-1)), self.value)


class FlakyEngine:
    """Duck-typed engine whose model path can be made to fail or stall."""

    def __init__(self, num_papers: int = 32, prior: bool = True) -> None:
        self.num_papers = num_papers
        self.freeze_seconds = 0.0
        self.cache = LRUCache(64)
        self.micro_batch = 8
        self.prior = FakePrior() if prior else None
        self.fail = False
        self.delay = 0.0
        self.calls = 0
        self._lock = threading.Lock()

    def info(self) -> dict:
        return {"num_papers": self.num_papers, "stub": True}

    def predict(self, paper_ids):
        ids = np.asarray(paper_ids, dtype=np.intp).reshape(-1)
        if len(ids) and (ids.min() < 0 or ids.max() >= self.num_papers):
            raise IndexError(f"paper id out of range [0, {self.num_papers})")
        with self._lock:
            self.calls += 1
        if self.fail:
            raise RuntimeError("engine is sick")
        if self.delay:
            time.sleep(self.delay)
        for pid in ids:
            self.cache.put(int(pid), float(pid))
        return ids.astype(np.float64)

    def rank(self, node_type, k=10, cluster=None):
        return []

    def score_title(self, title) -> float:
        return 1.0


# ----------------------------------------------------------------------
# CircuitBreaker state machine (injectable clock)
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def make(self, threshold=3, recovery=5.0):
        clock = FakeClock()
        return CircuitBreaker(failure_threshold=threshold,
                              recovery_seconds=recovery, clock=clock), clock

    def test_stays_closed_below_threshold(self):
        breaker, _ = self.make(threshold=3)
        breaker.record_failure("e1")
        breaker.record_failure("e2")
        assert breaker.state == CLOSED and breaker.allow()
        # A success resets the consecutive counter: two more failures
        # still do not trip.
        breaker.record_success()
        breaker.record_failure("e3")
        breaker.record_failure("e4")
        assert breaker.state == CLOSED
        assert breaker.snapshot()["trips"] == 0

    def test_threshold_failures_open(self):
        breaker, _ = self.make(threshold=3)
        for i in range(3):
            assert breaker.allow()
            breaker.record_failure(f"e{i}")
        assert breaker.state == OPEN
        assert not breaker.allow()
        snap = breaker.snapshot()
        assert snap["trips"] == 1 and snap["failures"] == 3
        assert snap["rejected"] == 1
        assert snap["last_failure_reason"] == "e2"

    def test_half_open_single_probe_token(self):
        breaker, clock = self.make(threshold=1, recovery=5.0)
        breaker.record_failure("boom")
        assert not breaker.allow()
        clock.now += 5.0
        assert breaker.state == HALF_OPEN
        assert breaker.allow()        # the one probe
        assert not breaker.allow()    # everyone else still rejected
        assert breaker.snapshot()["probes"] == 1

    def test_probe_success_closes(self):
        breaker, clock = self.make(threshold=1)
        breaker.record_failure("boom")
        clock.now += 10.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow() and breaker.allow()  # fully reopened
        assert breaker.snapshot()["recoveries"] == 1

    def test_probe_failure_reopens_and_restarts_clock(self):
        breaker, clock = self.make(threshold=1, recovery=5.0)
        breaker.record_failure("boom")
        clock.now += 5.0
        assert breaker.allow()
        breaker.record_failure("still sick")
        assert breaker.state == OPEN
        clock.now += 4.9  # recovery clock restarted at the probe failure
        assert not breaker.allow()
        clock.now += 0.1
        assert breaker.allow()
        assert breaker.snapshot()["trips"] == 2

    def test_reset_closes(self):
        breaker, _ = self.make(threshold=1)
        breaker.record_failure("boom")
        breaker.reset()
        assert breaker.state == CLOSED and breaker.allow()

    def test_trip_once_under_concurrent_failures(self, run_threads):
        """8 threads hammering failures: exactly one closed→open trip."""
        breaker, _ = self.make(threshold=4)

        def slam(tid):
            for _ in range(16):
                breaker.allow()
                breaker.record_failure("burst")

        run_threads(slam, count=8)
        snap = breaker.snapshot()
        assert snap["state"] == OPEN
        assert snap["trips"] == 1
        assert snap["failures"] == 8 * 16

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)


# ----------------------------------------------------------------------
# ServingRuntime fallback chain
# ----------------------------------------------------------------------
class TestFallbackChain:
    def make(self, threshold=2, prior=True, deadline=None):
        engine = FlakyEngine(prior=prior)
        clock = FakeClock()
        runtime = ServingRuntime(
            engine,
            breaker=CircuitBreaker(failure_threshold=threshold,
                                   recovery_seconds=60.0, clock=clock),
            deadline_seconds=deadline,
        )
        return runtime, engine, clock

    def test_model_source_when_healthy(self):
        runtime, _, _ = self.make()
        out = runtime.predict([1, 2, 3])
        assert out["source"] == "model" and out["degraded"] is False
        np.testing.assert_array_equal(out["predictions"], [1.0, 2.0, 3.0])
        assert runtime.snapshot()["served"] == {
            "model": 1, "cache": 0, "prior": 0, "unserved": 0}

    def test_client_error_propagates_and_never_moves_breaker(self):
        runtime, _, _ = self.make()
        with pytest.raises(IndexError):
            runtime.predict([10_000])
        snap = runtime.snapshot()
        assert snap["breaker"]["failures"] == 0
        assert snap["served"] == {"model": 0, "cache": 0, "prior": 0,
                                  "unserved": 0}

    def test_prior_fallback_then_breaker_open(self):
        runtime, engine, _ = self.make(threshold=2)
        engine.fail = True
        out1 = runtime.predict([5])
        out2 = runtime.predict([6])
        assert out1["source"] == out2["source"] == "prior"
        assert out1["degraded"] is True
        np.testing.assert_array_equal(out1["predictions"], [7.0])
        snap = runtime.snapshot()
        assert snap["breaker"]["state"] == OPEN
        # Once open, the model path is not even attempted.
        calls_before = engine.calls
        out3 = runtime.predict([8])
        assert out3["source"] == "prior" and engine.calls == calls_before
        assert runtime.snapshot()["served"]["prior"] == 3

    def test_cache_beats_prior_but_only_on_full_hit(self):
        runtime, engine, _ = self.make(threshold=1)
        runtime.predict([4, 5])      # healthy: populates the cache
        engine.fail = True
        runtime.predict([9])         # trips the breaker (threshold 1)
        full_hit = runtime.predict([4, 5])
        assert full_hit["source"] == "cache" and full_hit["degraded"]
        np.testing.assert_array_equal(full_hit["predictions"], [4.0, 5.0])
        partial = runtime.predict([4, 19])   # 19 never cached
        assert partial["source"] == "prior"  # all-or-nothing cache reads
        assert runtime.snapshot()["served"] == {
            "model": 1, "cache": 1, "prior": 2, "unserved": 0}

    def test_no_fallback_reraises_engine_error(self):
        runtime, engine, _ = self.make(threshold=1, prior=False)
        engine.fail = True
        with pytest.raises(RuntimeError, match="engine is sick"):
            runtime.predict([1])
        assert runtime.snapshot()["served"]["unserved"] == 1

    def test_deadline_violation_returns_answer_but_counts_failure(self):
        runtime, engine, _ = self.make(threshold=2, deadline=0.01)
        engine.delay = 0.05
        out = runtime.predict([3])
        # The answer is correct and served (it is merely late) ...
        assert out["source"] == "model"
        np.testing.assert_array_equal(out["predictions"], [3.0])
        # ... but the breaker heard about it.
        snap = runtime.snapshot()["breaker"]
        assert snap["failures"] == 1
        assert snap["last_failure_reason"] == "deadline"

    def test_concurrent_prior_fallback_exact_counters(self, run_threads):
        """8 threads against a dead engine: every request answered by the
        prior, zero unserved, breaker tripped exactly once."""
        runtime, engine, _ = self.make(threshold=1)
        engine.fail = True

        def slam(tid):
            for _ in range(8):
                out = runtime.predict([11])
                assert out["source"] == "prior" and out["degraded"]

        run_threads(slam, count=8)
        snap = runtime.snapshot()
        assert snap["served"]["prior"] == 8 * 8
        assert snap["served"]["unserved"] == 0
        assert snap["breaker"]["trips"] == 1


# ----------------------------------------------------------------------
# HTTP surface: tagging, healthz, metrics
# ----------------------------------------------------------------------
@pytest.fixture()
def degraded_server():
    engine = FlakyEngine()
    runtime = ServingRuntime(engine, breaker=CircuitBreaker(
        failure_threshold=2, recovery_seconds=60.0, clock=FakeClock()))
    server = make_server(engine, port=0, metrics=ServiceMetrics(),
                         runtime=runtime)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{server.server_address[1]}"
    yield engine, runtime, base
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def _call(method, url, body=None, timeout=10):
    data = None if body is None else json.dumps(body).encode()
    req = urllib.request.Request(url, data=data, method=method,
                                 headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestHTTPDegraded:
    def test_source_tagging_and_exact_counters(self, degraded_server):
        engine, runtime, base = degraded_server
        status, body = _call("POST", base + "/predict",
                             {"paper_ids": [0, 1]})
        assert status == 200
        assert body["source"] == "model" and body["degraded"] is False

        engine.fail = True
        for _ in range(3):  # 2 trip the breaker, 1 served while open
            status, body = _call("POST", base + "/predict",
                                 {"paper_ids": [9]})
            assert status == 200, "engine fault must never surface as 5xx"
            assert body["source"] == "prior" and body["degraded"] is True
        status, body = _call("GET", base + "/predict?ids=0,1")
        assert status == 200
        assert body["source"] == "cache" and body["degraded"] is True

        status, health = _call("GET", base + "/healthz")
        assert status == 200
        assert health["status"] == "degraded" and health["breaker"] == OPEN

        status, metrics = _call("GET", base + "/metrics")
        assert status == 200
        assert metrics["served"] == {"model": 1, "cache": 1, "prior": 3,
                                     "unserved": 0}
        breaker = metrics["breaker"]
        assert breaker["state"] == OPEN
        assert breaker["trips"] == 1 and breaker["failures"] == 2
        # No request errored at the HTTP layer.
        assert all(ep["errors"] == 0
                   for ep in metrics["endpoints"].values())

    def test_client_errors_are_400_not_breaker_food(self, degraded_server):
        engine, runtime, base = degraded_server
        status, body = _call("POST", base + "/predict",
                             {"paper_ids": [10_000]})
        assert status == 400
        status, metrics = _call("GET", base + "/metrics")
        assert metrics["breaker"]["failures"] == 0
        assert metrics["breaker"]["state"] == CLOSED

    def test_eight_thread_load_zero_5xx(self, degraded_server, run_threads):
        engine, runtime, base = degraded_server
        engine.fail = True
        results = []
        lock = threading.Lock()

        def slam(tid):
            for _ in range(6):
                status, body = _call("POST", base + "/predict",
                                     {"paper_ids": [3]})
                with lock:
                    results.append((status, body.get("source"),
                                    body.get("degraded")))

        run_threads(slam, count=8)
        assert len(results) == 48
        assert all(status == 200 for status, _, _ in results)
        assert all(source == "prior" and degraded
                   for _, source, degraded in results)
        status, metrics = _call("GET", base + "/metrics")
        assert metrics["served"]["prior"] == 48
        assert metrics["served"]["unserved"] == 0
        assert metrics["breaker"]["trips"] == 1


# ----------------------------------------------------------------------
# Hot reload shadow-validation gates (real checkpoints)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fitted_tiny(tiny_dataset):
    from repro.core import CATEHGN, CATEHGNConfig

    config = CATEHGNConfig(dim=8, num_layers=2, outer_iters=2, mini_iters=2,
                           center_iters=1, kappa=12, num_clusters=4,
                           patience=10, seed=0)
    return CATEHGN(config).fit(tiny_dataset)


class TestReloadGates:
    def _runtime(self, path):
        from repro.serve import InferenceEngine

        return ServingRuntime(InferenceEngine.from_checkpoint(path))

    def test_good_reload_swaps_and_resets(self, fitted_tiny, tmp_path):
        from repro.serve import save_catehgn

        path = save_catehgn(fitted_tiny, tmp_path / "model.npz")
        runtime = self._runtime(path)
        old = runtime.engine
        runtime.breaker.record_failure("x")  # some history to reset
        out = runtime.reload(path)
        assert out["reloaded"] is True and out["golden_checked"] > 0
        assert runtime.engine is not old
        assert runtime.snapshot()["reloads"] == 1
        assert runtime.breaker.state == CLOSED

    def test_golden_parity_failure_rejected(self, fitted_tiny, tmp_path):
        from repro.serve import save_catehgn
        from repro.serve.checkpoint import load_checkpoint, save_checkpoint

        path = save_catehgn(fitted_tiny, tmp_path / "model.npz")
        ckpt = load_checkpoint(path)
        extras = dict(ckpt.extras)
        extras["golden_preds"] = np.asarray(extras["golden_preds"]) + 0.5
        meta = {k: v for k, v in ckpt.meta.items()
                if k not in ("format_version", "content_sha256")}
        tampered = save_checkpoint(tmp_path / "tampered.npz", meta,
                                   ckpt.state, extras)

        runtime = self._runtime(path)
        old = runtime.engine
        with pytest.raises(ReloadRejected, match="golden-batch parity"):
            runtime.reload(tampered)
        assert runtime.engine is old  # old engine keeps serving
        assert runtime.predict([0])["source"] == "model"
        assert runtime.snapshot()["reloads_rejected"] == 1

    def test_contract_failure_rejected(self, fitted_tiny, tmp_path):
        from repro.data.io import save_graph
        from repro.hetnet.graph import EdgeArray
        from repro.serve import restore_catehgn, save_catehgn

        path = save_catehgn(fitted_tiny, tmp_path / "model.npz")
        # Candidate dir: same checkpoint, but its graph sidecar poisoned
        # with a dangling citation edge (the checkpoint digest covers
        # params/extras, not the sidecar — exactly the gap the contract
        # gate exists to close).
        bad_dir = tmp_path / "bad"
        bad_dir.mkdir()
        shutil.copy(path, bad_dir / "model.npz")
        graph = restore_catehgn(path).graph
        key = ("paper", "cites", "paper")
        edge = graph.edges[key]
        graph.edges[key] = EdgeArray(
            np.append(edge.src, graph.num_nodes["paper"] + 3),
            np.append(edge.dst, 0), np.append(edge.weight, 1.0))
        graph._topology_version += 1
        save_graph(graph, bad_dir / "model_graph")

        runtime = self._runtime(path)
        old = runtime.engine
        with pytest.raises(ReloadRejected) as excinfo:
            runtime.reload(bad_dir / "model.npz")
        assert runtime.engine is old
        assert runtime.snapshot()["reloads_rejected"] == 1
        # Either gate may fire first depending on load-path validation;
        # both mean "the candidate never went live".
        assert ("contract" in excinfo.value.reason
                or "load failed" in excinfo.value.reason)

    def test_corrupt_file_rejected(self, fitted_tiny, tmp_path):
        from repro.serve import save_catehgn

        path = save_catehgn(fitted_tiny, tmp_path / "model.npz")
        bad = tmp_path / "garbage.npz"
        bad.write_bytes(b"definitely not an npz archive")
        runtime = self._runtime(path)
        with pytest.raises(ReloadRejected, match="load failed"):
            runtime.reload(bad)
        assert runtime.snapshot()["reloads_rejected"] == 1
