"""Tests for the opt-in runtime tape sanitizer (analysis.detect_anomaly)."""

import warnings

import numpy as np
import pytest

from repro.analysis import (
    AnomalyError,
    TapeReuseWarning,
    UnusedParameterWarning,
    detect_anomaly,
)
from repro.nn import Linear, Module, Parameter
from repro.tensor import Tensor


@pytest.fixture(autouse=True)
def _quiet_numpy():
    # These tests *intentionally* produce NaN/Inf; silence numpy's own
    # RuntimeWarnings so the sanitizer's reporting is what gets tested.
    with np.errstate(all="ignore"):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            yield


def test_clean_computation_passes_through():
    with detect_anomaly():
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        y = (x * 3.0).sum()
        y.backward()
    assert np.allclose(x.grad, [3.0, 3.0])


def test_nan_flagged_at_producing_op():
    x = Tensor(np.array([1.0, -1.0]), requires_grad=True)
    with detect_anomaly():
        with pytest.raises(AnomalyError) as excinfo:
            _ = x.log()  # log(-1) = nan, flagged HERE, not at the loss
    msg = str(excinfo.value)
    assert "non-finite" in msg
    assert "Op created at" in msg
    # The creation-site traceback names this test file.
    assert "test_analysis_anomaly" in msg


def test_inf_flagged_in_forward():
    x = Tensor(np.array([0.0, 1.0]), requires_grad=True)
    with detect_anomaly():
        with pytest.raises(AnomalyError):
            _ = 1.0 / x


def test_nan_gradient_flagged_in_backward():
    # Forward is finite; the gradient of sqrt at 0 is inf.
    x = Tensor(np.array([0.0, 4.0]), requires_grad=True)
    with detect_anomaly():
        y = (x ** 0.5).sum()
        with pytest.raises(AnomalyError) as excinfo:
            y.backward()
    msg = str(excinfo.value)
    assert "gradient" in msg
    # Attribution points at the pow op that produced the inf gradient.
    assert "__pow__" in msg


def test_warn_action_counts_instead_of_raising():
    x = Tensor(np.array([-1.0]), requires_grad=True)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        with detect_anomaly(action="warn") as guard:
            _ = x.log()
            _ = x.log()
    assert guard.nan_count == 2


def test_instrumentation_restored_on_exit():
    original_make = Tensor.__dict__["_make"]
    original_backward = Tensor.backward
    with detect_anomaly():
        assert Tensor.__dict__["_make"] is not original_make
    assert Tensor.__dict__["_make"] is original_make
    assert Tensor.backward is original_backward
    # NaNs flow silently again outside the context (engine default).
    out = Tensor(np.array([-1.0]), requires_grad=True).log()
    assert np.isnan(out.data).all()


def test_instrumentation_restored_on_error():
    original_make = Tensor.__dict__["_make"]
    with pytest.raises(AnomalyError):
        with detect_anomaly():
            Tensor(np.array([-1.0]), requires_grad=True).log()
    assert Tensor.__dict__["_make"] is original_make


def test_double_backward_warns():
    x = Tensor(np.array([2.0]), requires_grad=True)
    with detect_anomaly():
        y = (x * x).sum()
        y.backward()
        with pytest.warns(TapeReuseWarning):
            y.backward()
    # The second pass corrupts gradients by accumulating on top of stale
    # intermediate grads (4 -> 16, not even the "expected" 8) — exactly
    # the silent bug the warning exists to flag.
    assert not np.allclose(x.grad, [4.0])


def test_unused_parameter_warning():
    class Leaky(Module):
        def __init__(self):
            super().__init__()
            rng = np.random.default_rng(0)
            self.used = Linear(3, 2, rng)
            self.orphan = Linear(3, 2, rng)  # never wired into forward

        def forward(self, x):
            return self.used(x)

    model = Leaky()
    x = Tensor(np.ones((4, 3)))
    with detect_anomaly(modules=[model]):
        loss = model(x).sum()
        with pytest.warns(UnusedParameterWarning, match="orphan"):
            loss.backward()


def test_all_parameters_used_no_warning():
    rng = np.random.default_rng(0)
    model = Linear(3, 2, rng)
    x = Tensor(np.ones((4, 3)))
    with detect_anomaly(modules=[model]):
        loss = model(x).sum()
        with warnings.catch_warnings():
            warnings.simplefilter("error", UnusedParameterWarning)
            loss.backward()


def test_unused_parameters_query():
    class Half(Module):
        def __init__(self):
            super().__init__()
            self.a = Parameter(np.ones(2))
            self.b = Parameter(np.ones(2))

        def forward(self, x):
            return (x * self.a).sum()

    model = Half()
    x = Tensor(np.ones(2))
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        with detect_anomaly(modules=[model]) as guard:
            model(x).backward()
            assert guard.unused_parameters() == ["b"]


def test_nested_contexts():
    with detect_anomaly():
        with detect_anomaly():
            x = Tensor(np.array([1.0]), requires_grad=True)
            (x * 2.0).sum().backward()
        # Inner exit restores the *outer* instrumentation, still active:
        with pytest.raises(AnomalyError):
            Tensor(np.array([-2.0]), requires_grad=True).log()
