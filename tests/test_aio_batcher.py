"""Property tests on the dynamic batcher invariants (DESIGN §16).

The batcher's contract is that coalescing is *invisible* to callers:
whatever interleaving of concurrent requests the collector happens to
flush together, every response must be bitwise what a sequential
unbatched call would have returned, and every submitted request must be
resolved exactly once — also when the engine call fails mid-batch.
These are pinned as hypothesis properties over random request mixes,
plus deterministic checks that both flush watermarks actually bound the
batch.
"""

import asyncio
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CATEHGN
from repro.eval.runner import default_cate_config
from repro.serve import (
    BatchSettings,
    DynamicBatcher,
    InferenceEngine,
    ServingRuntime,
)


@pytest.fixture(scope="module")
def runtime_pair(tiny_dataset, tmp_path_factory):
    """Two independent runtimes over the same checkpoint.

    Cache-free engines so every prediction exercises the real head
    path: with the LRU on, the reference pass would warm the cache for
    the batched pass and vice versa.
    """
    config = default_cate_config(dim=16, seed=0, outer_iters=1, mini_iters=1)
    est = CATEHGN(config).fit(tiny_dataset)
    path = est.save_checkpoint(tmp_path_factory.mktemp("ckpt") / "model")
    batched = ServingRuntime(InferenceEngine.from_checkpoint(
        path, cache_size=0))
    reference = ServingRuntime(InferenceEngine.from_checkpoint(
        path, cache_size=0))
    return batched, reference


def _run_batched(runtime, submissions, settings_=None):
    """Drive one batcher lifecycle: submit everything concurrently."""

    async def main():
        batcher = DynamicBatcher(
            runtime, settings_ or BatchSettings(max_wait_ms=5.0))
        batcher.start()
        try:
            results = await asyncio.gather(
                *(sub(batcher) for sub in submissions),
                return_exceptions=True)
        finally:
            await batcher.stop()
        return results, batcher

    return asyncio.run(main())


def _id_lists(num_papers):
    return st.lists(
        st.lists(st.integers(min_value=0, max_value=num_papers - 1),
                 min_size=1, max_size=5),
        min_size=1, max_size=12)


@settings(max_examples=15, deadline=None)
@given(data=st.data())
def test_batched_predict_bitwise_equals_sequential(runtime_pair, data):
    """Any concurrent interleaving == the sequential unbatched responses."""
    batched_rt, reference_rt = runtime_pair
    requests = data.draw(_id_lists(batched_rt.engine.num_papers))

    results, batcher = _run_batched(
        batched_rt,
        [lambda b, ids=ids: b.submit_predict(ids) for ids in requests])

    for ids, got in zip(requests, results):
        assert not isinstance(got, BaseException), got
        ref = reference_rt.predict(np.asarray(ids, dtype=np.intp))
        expected = {
            "paper_ids": [int(i) for i in ids],
            "predictions": [float(p) for p in ref["predictions"]],
            "source": ref["source"],
            "degraded": ref["degraded"],
        }
        assert got == expected  # float-exact, not approx
    assert batcher.resolutions == len(requests)


@settings(max_examples=10, deadline=None)
@given(ks=st.lists(st.integers(min_value=1, max_value=30),
                   min_size=1, max_size=8),
       node_type=st.sampled_from(["paper", "author", "venue"]))
def test_batched_rank_is_stable_prefix(runtime_pair, ks, node_type):
    """Coalesced ranks of mixed k == each unbatched stable-argsort rank."""
    batched_rt, reference_rt = runtime_pair

    results, _ = _run_batched(
        batched_rt,
        [lambda b, k=k: b.submit_rank(node_type, k, None) for k in ks])

    for k, got in zip(ks, results):
        assert not isinstance(got, BaseException), got
        assert got == reference_rt.engine.rank(node_type, k=k, cluster=None)


class _ScriptedRuntime:
    """Engine-free runtime: fails whenever a poisoned id is batched in."""

    NUM_PAPERS = 100
    POISON_AT = 50

    class _StubEngine:
        num_papers = 100

    def __init__(self):
        self.engine = self._StubEngine()
        self.calls = 0

    def predict(self, ids):
        self.calls += 1
        ids = np.asarray(ids)
        if len(ids) and ids.max() >= self.POISON_AT:
            raise RuntimeError("scripted engine failure")
        return {"predictions": ids.astype(np.float64) * 2.0,
                "source": "model", "degraded": False}


@settings(max_examples=25, deadline=None)
@given(requests=st.lists(
    st.lists(st.integers(min_value=0, max_value=99),
             min_size=1, max_size=4),
    min_size=1, max_size=16))
def test_every_request_resolved_exactly_once(requests):
    """No drop, no double-resolve — also when the forward raises.

    A poisoned id fails the whole shared forward, so every request in
    that flush gets the exception; requests in clean flushes still get
    results.  Either way the resolution count must equal the submission
    count for any interleaving.
    """
    runtime = _ScriptedRuntime()
    results, batcher = _run_batched(
        runtime,
        [lambda b, ids=ids: b.submit_predict(ids) for ids in requests])

    assert len(results) == len(requests)
    assert batcher.resolutions == len(requests)
    for ids, got in zip(requests, results):
        assert isinstance(got, (dict, RuntimeError)), got
        if isinstance(got, dict):
            # A clean response is always the right slice of the batch.
            assert got["predictions"] == [float(i) * 2.0 for i in ids]
    clean = [r for r in results if isinstance(r, dict)]
    poisoned = [ids for ids in requests if max(ids) >= 50]
    # Every all-clean-flush guarantee we can make without fixing the
    # interleaving: at least the poisoned requests cannot have resolved
    # to results.
    assert len(clean) <= len(requests) - len(poisoned)


def test_size_watermark_bounds_the_flush():
    """cost >= max_batch_size flushes immediately, not at the deadline."""
    runtime = _ScriptedRuntime()
    settings_ = BatchSettings(max_batch_size=4, max_wait_ms=5_000.0)
    start = time.perf_counter()
    results, batcher = _run_batched(
        runtime,
        [lambda b, i=i: b.submit_predict([i % 40]) for i in range(12)],
        settings_=settings_)
    wall = time.perf_counter() - start

    assert all(isinstance(r, dict) for r in results)
    # Had the 5s wait watermark governed, this would take >= 15s.
    assert wall < 2.0
    sizes = [size for size, n in batcher.metrics.size_histogram.items()
             for _ in range(n)]
    assert max(sizes) <= 4
    assert sum(sizes) == 12


def test_wait_watermark_flushes_partial_batches():
    """A batch below the size watermark flushes at the wait deadline."""
    runtime = _ScriptedRuntime()
    settings_ = BatchSettings(max_batch_size=10_000, max_wait_ms=60.0)
    start = time.perf_counter()
    results, batcher = _run_batched(
        runtime,
        [lambda b, i=i: b.submit_predict([i]) for i in range(3)],
        settings_=settings_)
    wall = time.perf_counter() - start

    assert all(isinstance(r, dict) for r in results)
    # Flushed by the wait watermark: after ~60ms, long before the size
    # watermark could ever fill, and all three coalesced into one flush.
    assert 0.04 <= wall < 5.0
    assert batcher.metrics.batches == 1
    assert batcher.metrics.size_histogram == {3: 1}


def test_shutdown_fails_queued_requests():
    """stop() must resolve (not leak) anything still in the queue."""

    async def main():
        runtime = _ScriptedRuntime()
        batcher = DynamicBatcher(
            runtime, BatchSettings(max_wait_ms=10_000.0,
                                   max_batch_size=10_000))
        batcher.start()
        waiter = asyncio.ensure_future(batcher.submit_predict([1]))
        await asyncio.sleep(0.05)  # let it enter the queue
        # The collector holds it, waiting for the far-away watermarks;
        # stopping must still resolve the future.
        await batcher.stop()
        with pytest.raises(RuntimeError):
            await waiter
        return batcher

    batcher = asyncio.run(main())
    assert batcher.resolutions == 1
