"""Regression tests: Module registry hygiene and state_dict dtype contract."""

import numpy as np
import pytest

from repro.nn import Linear, Module, Parameter


class Host(Module):
    def __init__(self):
        super().__init__()
        self.w = Parameter(np.ones(3))
        self.child = Linear(2, 2, np.random.default_rng(0))

    def forward(self, x):
        return x


class TestSetattrStaleRegistry:
    def test_parameter_replaced_by_plain_value(self):
        m = Host()
        assert "w" in dict(m.named_parameters())
        m.w = None  # reassign to a non-Parameter
        names = [n for n, _ in m.named_parameters()]
        assert "w" not in names
        assert "w" not in m.state_dict()

    def test_module_replaced_by_plain_value(self):
        m = Host()
        assert any(n.startswith("child.") for n in m.state_dict())
        m.child = "retired"
        assert not any(n.startswith("child.") for n in m.state_dict())
        assert "child" not in m._modules

    def test_parameter_replaced_by_module(self):
        m = Host()
        m.w = Linear(2, 2, np.random.default_rng(1))
        assert "w" not in m._parameters
        assert "w" in m._modules
        assert any(n.startswith("w.") for n, _ in m.named_parameters())

    def test_module_replaced_by_parameter(self):
        m = Host()
        m.child = Parameter(np.zeros(2))
        assert "child" not in m._modules
        assert "child" in m._parameters

    def test_replacement_parameter_is_tracked(self):
        m = Host()
        new = Parameter(np.full(3, 7.0))
        m.w = new
        assert dict(m.named_parameters())["w"] is new

    def test_zero_grad_skips_stale_entries(self):
        m = Host()
        m.w = 3.14
        m.zero_grad()  # must not touch the detached Parameter

    def test_assign_parameter_before_init_raises(self):
        class Early(Module):
            def __init__(self):
                # Parameter assigned before super().__init__()
                self.w = Parameter(np.ones(2))

        with pytest.raises(AttributeError):
            Early()


class TestLoadStateDictDtype:
    def test_float32_snapshot_is_upcast(self):
        m = Host()
        state = {k: v.astype(np.float32) for k, v in m.state_dict().items()}
        m.load_state_dict(state)
        for _, param in m.named_parameters():
            assert param.data.dtype == np.float64

    def test_integer_snapshot_is_coerced(self):
        m = Host()
        state = m.state_dict()
        state["w"] = np.array([1, 2, 3])  # int64
        m.load_state_dict(state)
        assert m.w.data.dtype == np.float64
        assert np.allclose(m.w.data, [1.0, 2.0, 3.0])

    def test_values_are_copied(self):
        m = Host()
        state = m.state_dict()
        m.load_state_dict(state)
        state["w"][0] = 99.0
        assert m.w.data[0] != 99.0

    @pytest.mark.parametrize("bad", [
        np.array([1 + 2j, 0j, 1j]),
        np.array(["a", "b", "c"]),
        np.array([object(), object(), object()], dtype=object),
    ], ids=["complex", "str", "object"])
    def test_non_castable_dtype_rejected(self, bad):
        m = Host()
        state = m.state_dict()
        state["w"] = bad
        with pytest.raises(TypeError, match="float64"):
            m.load_state_dict(state)

    def test_shape_mismatch_still_rejected(self):
        m = Host()
        state = m.state_dict()
        state["w"] = np.zeros(4)
        with pytest.raises(ValueError, match="shape mismatch"):
            m.load_state_dict(state)

    def test_roundtrip_after_stale_reassignment(self):
        m = Host()
        m.w = Parameter(np.arange(3.0))
        snap = m.state_dict()
        m2 = Host()
        m2.w = Parameter(np.zeros(3))
        m2.load_state_dict(snap)
        assert np.allclose(m2.w.data, [0.0, 1.0, 2.0])
