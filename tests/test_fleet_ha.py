"""Cross-machine elastic training + router failover (DESIGN §18).

TCP side: ``ElasticTrainer(transport="tcp")`` must replay the exact
bitwise trajectory of the shared-memory transport at the same
(seed, K) — including after a worker SIGKILL and after a mid-step
network partition whose fenced zombie is rejected at the reduce.

Router side: a ``ServingFleet(standby=True)`` keeps a warm-standby
router mirroring ring membership over the transport; killing the
active router under concurrent load loses zero requests, and the
promoted router keeps healing replicas afterwards.
"""

import threading
import time

import numpy as np
import pytest

from repro.core import CATEHGN
from repro.eval.runner import default_cate_config
from repro.fleet import ElasticTrainer, ServingFleet, http_json
from repro.fleet.client import predict_scripts, run_load
from repro.fleet.transport import FaultyTransport
from repro.resilience import faults
from repro.serve import save_catehgn


def _elastic_config():
    return default_cate_config(dim=8, seed=0, outer_iters=2, mini_iters=1)


@pytest.fixture(scope="module")
def shm_reference(tiny_dataset):
    """The shared-memory trajectory every TCP run must reproduce."""
    return ElasticTrainer(_elastic_config(), num_workers=2,
                          steps=3).fit(tiny_dataset)


def _assert_same_trajectory(result, reference):
    assert result.fingerprint == reference.fingerprint
    assert result.seed_hashes == reference.seed_hashes
    assert result.losses == reference.losses
    assert set(result.state) == set(reference.state)
    for key in reference.state:
        assert np.array_equal(result.state[key], reference.state[key])


# ---------------------------------------------------------------------------
# TCP elastic training
# ---------------------------------------------------------------------------

class TestTcpElastic:
    def test_tcp_matches_shm_bitwise(self, tiny_dataset, shm_reference):
        tcp = ElasticTrainer(_elastic_config(), num_workers=2, steps=3,
                             transport="tcp").fit(tiny_dataset)
        assert tcp.transport == "tcp"
        assert shm_reference.transport == "shm"
        _assert_same_trajectory(tcp, shm_reference)
        assert tcp.deaths == [] and tcp.fenced == []
        rpc = tcp.transport_stats["rpc"]
        assert rpc["codec_errors"] == 0
        assert rpc["requests"] > 0

    def test_worker_kill_over_tcp_resumes_bitwise(self, tiny_dataset,
                                                  shm_reference):
        with faults.kill_worker(shard=0, step=1):
            survived = ElasticTrainer(
                _elastic_config(), num_workers=2, steps=3,
                transport="tcp").fit(tiny_dataset)
        assert [(d["step"], d["shard"], d["reason"])
                for d in survived.deaths] == [(1, 0, "exit")]
        assert survived.transport_stats["restarts"][0] == 1
        _assert_same_trajectory(survived, shm_reference)

    def test_netsplit_fences_zombie_and_stays_bitwise(self, tiny_dataset,
                                                      shm_reference):
        """Partition one worker mid-step: lease lapses, replacement is
        spawned at an advanced fence generation, and the healed zombie's
        stale push is rejected — with the trajectory unperturbed."""
        proxies = {}

        def endpoint_factory(shard, gen, address):
            if shard == 1 and gen == 0:
                proxy = FaultyTransport(address, link="victim")
                addr = proxy.start()
                proxies["victim"] = proxy
                return addr
            return address

        def healer():
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                proxy = proxies.get("victim")
                if proxy is not None and proxy.partitioned:
                    time.sleep(1.5)  # let fencing + respawn land first
                    proxy.set_partitioned(False)
                    return
                time.sleep(0.05)

        with faults.partition_at("push_result", step=1, link="victim"):
            threading.Thread(target=healer, daemon=True).start()
            result = ElasticTrainer(
                _elastic_config(), num_workers=2, steps=3,
                transport="tcp", lease_ttl=1.0,
                endpoint_factory=endpoint_factory).fit(tiny_dataset)
        proxies["victim"].stop()
        assert [(d["step"], d["shard"], d["reason"])
                for d in result.deaths] == [(1, 1, "lease")]
        assert any(r["member"] == "shard-1" and r["stale_gen"] == 0
                   for r in result.fenced)
        _assert_same_trajectory(result, shm_reference)

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError, match="transport"):
            ElasticTrainer(_elastic_config(), num_workers=2,
                           transport="carrier-pigeon")


# ---------------------------------------------------------------------------
# Warm-standby router failover
# ---------------------------------------------------------------------------

class TestStandbyFailover:
    def test_kill_active_router_under_load_zero_failures(
            self, tiny_dataset, tmp_path):
        config = default_cate_config(dim=16, seed=0, outer_iters=2,
                                     mini_iters=2)
        fitted = CATEHGN(config).fit(tiny_dataset)
        ckpt = save_catehgn(fitted, tmp_path / "model.npz")

        fleet = ServingFleet(str(ckpt), 2, probe_interval=0.2,
                             standby=True)
        host, port = fleet.start()
        try:
            status, body = http_json(host, port, "POST", "/predict",
                                     {"paper_ids": [1, 2]})
            assert status == 200
            before = body["predictions"]

            scripts = predict_scripts(50, 4, 50, seed=5)
            holder = []
            load = threading.Thread(
                target=lambda: holder.append(run_load(host, port, scripts)))
            load.start()
            time.sleep(0.3)
            fleet.kill_active()
            load.join(timeout=120)
            assert not load.is_alive()
            assert fleet.standby.promoted.wait(10)

            result = holder[0]
            assert result.failures == 0
            assert result.server_errors() == 0
            assert result.count(200) == result.total == 200
            assert fleet.standby.syncs > 0

            # Same port, same answers, full ring — through the twin.
            status, body = http_json(host, port, "POST", "/predict",
                                     {"paper_ids": [1, 2]})
            assert status == 200 and body["predictions"] == before
            status, snap = http_json(host, port, "GET", "/fleet/status")
            assert status == 200
            assert sorted(snap["ring"]) == ["replica-0", "replica-1"]

            # The promoted router still heals replica deaths.
            victim = fleet.supervisor.replica_names()[0]
            fleet.supervisor.kill_replica(victim)
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                _, snap = http_json(host, port, "GET", "/fleet/status")
                rep = snap["replicas"][victim]
                if rep["alive"] and rep["restarts"] >= 1 \
                        and victim in snap["ring"]:
                    break
                time.sleep(0.2)
            else:  # pragma: no cover
                pytest.fail(f"{victim} never healed after takeover")
        finally:
            fleet.shutdown()

    def test_kill_active_requires_standby(self, tiny_dataset, tmp_path):
        config = default_cate_config(dim=16, seed=0, outer_iters=2,
                                     mini_iters=2)
        fitted = CATEHGN(config).fit(tiny_dataset)
        ckpt = save_catehgn(fitted, tmp_path / "plain.npz")
        fleet = ServingFleet(str(ckpt), 1, probe_interval=0.2)
        fleet.start()
        try:
            with pytest.raises(RuntimeError, match="standby"):
                fleet.kill_active()
        finally:
            fleet.shutdown()

    def test_standby_replica_leases_visible_in_status(self, tiny_dataset,
                                                      tmp_path):
        config = default_cate_config(dim=16, seed=0, outer_iters=2,
                                     mini_iters=2)
        fitted = CATEHGN(config).fit(tiny_dataset)
        ckpt = save_catehgn(fitted, tmp_path / "lease.npz")
        fleet = ServingFleet(str(ckpt), 1, probe_interval=0.2)
        host, port = fleet.start()
        try:
            status, snap = http_json(host, port, "GET", "/fleet/status")
            assert status == 200
            for replica in snap["replicas"].values():
                assert replica["lease_remaining"] is not None
                assert replica["lease_remaining"] > 0
        finally:
            fleet.shutdown()
