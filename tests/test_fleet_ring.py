"""Property-based tests (hypothesis) on the consistent-hash ring.

The ring decides which replica answers which request, so its contracts
are pinned as properties over random node sets and key streams rather
than a handful of examples: lookups must be deterministic for a fixed
seed, keys must spread across members within a statistical balance
envelope, membership changes must remap only the keys that *had* to
move (the whole point of consistent hashing), and the failover order
``successors(key)`` must enumerate every member exactly once starting
with the owner.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet import HashRing

#: Distinct node-name alphabets so generated names never collide with
#: the fixed members used in remap tests.
node_names = st.lists(
    st.text(alphabet="abcdefghij", min_size=1, max_size=8),
    min_size=1, max_size=8, unique=True)


def _keys(n: int):
    return [f"key-{i}" for i in range(n)]


# ---------------------------------------------------------------------------
# Determinism
# ---------------------------------------------------------------------------

@settings(max_examples=30, deadline=None)
@given(nodes=node_names, seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_lookup_deterministic_for_fixed_seed(nodes, seed):
    a = HashRing(nodes, seed=seed)
    b = HashRing(seed=seed)
    # Same membership reached through a different insertion order must
    # produce the identical ring (the point set is order-free).
    for name in reversed(nodes):
        b.add(name)
    for key in _keys(200):
        assert a.lookup(key) == b.lookup(key)
        assert a.successors(key) == b.successors(key)


@settings(max_examples=20, deadline=None)
@given(nodes=node_names,
       seed_a=st.integers(min_value=0, max_value=2**16),
       seed_b=st.integers(min_value=0, max_value=2**16))
def test_seed_changes_placement_but_not_contract(nodes, seed_a, seed_b):
    ra, rb = HashRing(nodes, seed=seed_a), HashRing(nodes, seed=seed_b)
    for key in _keys(50):
        assert ra.lookup(key) in nodes
        assert rb.lookup(key) in nodes
    if seed_a == seed_b:
        assert [ra.lookup(k) for k in _keys(50)] == \
            [rb.lookup(k) for k in _keys(50)]


# ---------------------------------------------------------------------------
# Balance
# ---------------------------------------------------------------------------

@settings(max_examples=15, deadline=None)
@given(num_nodes=st.integers(min_value=2, max_value=8),
       seed=st.integers(min_value=0, max_value=2**16))
def test_keys_spread_across_all_members(num_nodes, seed):
    nodes = [f"replica-{i}" for i in range(num_nodes)]
    ring = HashRing(nodes, seed=seed)
    counts = {n: 0 for n in nodes}
    total = 2000
    for key in _keys(total):
        counts[ring.lookup(key)] += 1
    # Every member owns traffic, and no member exceeds 3x its fair
    # share — loose enough for 64 vnodes' variance, tight enough to
    # catch a broken point set (all keys on one node).
    assert all(c > 0 for c in counts.values())
    fair = total / num_nodes
    assert max(counts.values()) < 3.0 * fair


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_balance_tightens_with_vnodes(seed):
    nodes = [f"replica-{i}" for i in range(4)]
    spreads = []
    for vnodes in (4, 256):
        ring = HashRing(nodes, vnodes=vnodes, seed=seed)
        counts = {n: 0 for n in nodes}
        for key in _keys(2000):
            counts[ring.lookup(key)] += 1
        arr = np.array(list(counts.values()), dtype=float)
        spreads.append(arr.max() / max(arr.min(), 1.0))
    # Not strictly monotonic for every seed, but 64x more vnodes must
    # never make the spread dramatically worse.
    assert spreads[1] <= spreads[0] * 1.5


# ---------------------------------------------------------------------------
# Minimal remap
# ---------------------------------------------------------------------------

@settings(max_examples=20, deadline=None)
@given(num_nodes=st.integers(min_value=2, max_value=8),
       seed=st.integers(min_value=0, max_value=2**16))
def test_remove_only_remaps_the_dead_nodes_keys(num_nodes, seed):
    nodes = [f"replica-{i}" for i in range(num_nodes)]
    ring = HashRing(nodes, seed=seed)
    keys = _keys(500)
    before = {k: ring.lookup(k) for k in keys}
    victim = nodes[0]
    ring.remove(victim)
    for k in keys:
        after = ring.lookup(k)
        if before[k] != victim:
            assert after == before[k], \
                f"{k} moved {before[k]} -> {after} though its owner lived"
        else:
            assert after != victim


@settings(max_examples=20, deadline=None)
@given(num_nodes=st.integers(min_value=1, max_value=7),
       seed=st.integers(min_value=0, max_value=2**16))
def test_add_only_steals_keys_for_the_new_node(num_nodes, seed):
    nodes = [f"replica-{i}" for i in range(num_nodes)]
    ring = HashRing(nodes, seed=seed)
    keys = _keys(500)
    before = {k: ring.lookup(k) for k in keys}
    ring.add("newcomer")
    for k in keys:
        after = ring.lookup(k)
        assert after == before[k] or after == "newcomer", \
            f"{k} moved {before[k]} -> {after}, not to the newcomer"


@settings(max_examples=15, deadline=None)
@given(num_nodes=st.integers(min_value=2, max_value=6),
       seed=st.integers(min_value=0, max_value=2**16))
def test_remove_then_readd_restores_placement(num_nodes, seed):
    nodes = [f"replica-{i}" for i in range(num_nodes)]
    ring = HashRing(nodes, seed=seed)
    keys = _keys(300)
    before = {k: ring.lookup(k) for k in keys}
    ring.remove(nodes[1])
    ring.add(nodes[1])
    assert {k: ring.lookup(k) for k in keys} == before


# ---------------------------------------------------------------------------
# Failover order
# ---------------------------------------------------------------------------

@settings(max_examples=20, deadline=None)
@given(nodes=node_names, seed=st.integers(min_value=0, max_value=2**16))
def test_successors_enumerate_every_member_once(nodes, seed):
    ring = HashRing(nodes, seed=seed)
    for key in _keys(50):
        order = ring.successors(key)
        assert order[0] == ring.lookup(key)
        assert sorted(order) == sorted(nodes)
        assert len(set(order)) == len(order)


def test_empty_ring_raises():
    ring = HashRing()
    try:
        ring.lookup("anything")
    except LookupError:
        pass
    else:  # pragma: no cover
        raise AssertionError("lookup on an empty ring must raise")


def test_add_remove_idempotent():
    ring = HashRing(["a", "b"], seed=3)
    ring.add("a")
    ring.remove("zzz-not-there")
    assert ring.nodes == ("a", "b")
    ring.remove("b")
    ring.remove("b")
    assert ring.nodes == ("a",)
