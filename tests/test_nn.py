"""Unit tests for the nn layer library: modules, layers, losses, optim."""

import numpy as np
import pytest

from repro.nn import (
    MLP,
    SGD,
    Adam,
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    Module,
    Parameter,
    Sequential,
    bce_with_logits,
    jsd_mi_estimate,
    kl_divergence,
    l1_loss,
    mse_loss,
)
from repro.nn.layers import Activation
from repro.tensor import Tensor


class TestModule:
    def test_parameter_registration(self, rng):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.w = Parameter(np.ones(3))
                self.child = Linear(2, 2, rng)

        net = Net()
        names = dict(net.named_parameters())
        assert "w" in names
        assert "child.weight" in names and "child.bias" in names
        assert net.num_parameters() == 3 + 4 + 2

    def test_zero_grad_clears_all(self, rng):
        layer = Linear(2, 2, rng)
        out = layer(Tensor(np.ones((1, 2)))).sum()
        out.backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_train_eval_propagates(self, rng):
        seq = Sequential(Linear(2, 2, rng), Dropout(0.5, rng))
        seq.eval()
        assert not seq.training
        for module in seq:
            assert not module.training

    def test_state_dict_roundtrip(self, rng):
        a, b = Linear(3, 2, rng), Linear(3, 2, rng)
        b.load_state_dict(a.state_dict())
        assert np.allclose(a.weight.data, b.weight.data)

    def test_state_dict_rejects_mismatched_keys(self, rng):
        a = Linear(3, 2, rng)
        with pytest.raises(KeyError):
            a.load_state_dict({"nope": np.zeros(1)})

    def test_state_dict_rejects_bad_shapes(self, rng):
        a = Linear(3, 2, rng)
        state = a.state_dict()
        state["weight"] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            a.load_state_dict(state)

    def test_state_dict_copies(self, rng):
        a = Linear(3, 2, rng)
        state = a.state_dict()
        state["weight"][:] = 99.0
        assert not np.allclose(a.weight.data, 99.0)


class TestLayers:
    def test_linear_shapes_and_values(self, rng):
        layer = Linear(4, 2, rng)
        x = np.ones((5, 4))
        out = layer(Tensor(x))
        assert out.shape == (5, 2)
        assert np.allclose(out.data, x @ layer.weight.data + layer.bias.data)

    def test_linear_no_bias(self, rng):
        layer = Linear(4, 2, rng, bias=False)
        assert layer.bias is None
        assert sum(1 for _ in layer.parameters()) == 1

    def test_embedding_lookup_and_grad(self, rng):
        emb = Embedding(6, 3, rng)
        out = emb(np.array([1, 1, 4]))
        assert out.shape == (3, 3)
        out.sum().backward()
        assert np.allclose(emb.weight.grad[1], 2.0)
        assert np.allclose(emb.weight.grad[4], 1.0)
        assert np.allclose(emb.weight.grad[0], 0.0)

    def test_layernorm_normalizes(self, rng):
        ln = LayerNorm(8)
        x = Tensor(rng.normal(2.0, 5.0, size=(4, 8)))
        out = ln(x).data
        assert np.allclose(out.mean(axis=1), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=1), 1.0, atol=1e-2)

    def test_dropout_training_changes_values(self):
        rng = np.random.default_rng(1)
        layer = Dropout(0.5, rng)
        x = Tensor(np.ones((10, 10)))
        out = layer(x).data
        assert (out == 0).any()
        layer.eval()
        assert np.allclose(layer(x).data, 1.0)

    def test_sequential_and_activation(self, rng):
        seq = Sequential(Linear(3, 3, rng), Activation(lambda t: t.relu()))
        out = seq(Tensor(-np.ones((2, 3)) * 100))
        assert np.all(out.data >= 0)

    def test_mlp_requires_two_dims(self, rng):
        with pytest.raises(ValueError):
            MLP([4], rng)

    def test_mlp_forward_shape(self, rng):
        mlp = MLP([4, 8, 8, 1], rng)
        assert mlp(Tensor(np.zeros((5, 4)))).shape == (5, 1)

    def test_mlp_output_activation(self, rng):
        mlp = MLP([4, 4, 1], rng, output_activation=lambda t: t.sigmoid())
        out = mlp(Tensor(np.random.default_rng(0).normal(size=(5, 4)))).data
        assert np.all((out > 0) & (out < 1))


class TestLosses:
    def test_mse_reductions(self):
        pred, target = Tensor([1.0, 3.0]), np.array([0.0, 0.0])
        assert mse_loss(pred, target).item() == 5.0
        assert mse_loss(pred, target, reduction="sum").item() == 10.0
        assert mse_loss(pred, target, reduction="none").shape == (2,)

    def test_l1(self):
        assert l1_loss(Tensor([2.0, -2.0]), np.zeros(2)).item() == 2.0

    def test_bce_matches_reference(self, rng):
        logits = rng.normal(size=10)
        target = (rng.random(10) > 0.5).astype(float)
        ours = bce_with_logits(Tensor(logits), target).item()
        p = 1 / (1 + np.exp(-logits))
        ref = -(target * np.log(p) + (1 - target) * np.log(1 - p)).mean()
        assert np.isclose(ours, ref, atol=1e-8)

    def test_kl_zero_for_identical(self):
        p = Tensor(np.full((4, 3), 1 / 3))
        assert abs(kl_divergence(p, p).item()) < 1e-8

    def test_kl_positive_for_different(self):
        p = Tensor(np.array([[0.9, 0.1]]))
        q = Tensor(np.array([[0.5, 0.5]]))
        assert kl_divergence(p, q).item() > 0

    def test_jsd_estimator_prefers_separated_scores(self):
        high = jsd_mi_estimate(Tensor([5.0]), Tensor([-5.0])).item()
        low = jsd_mi_estimate(Tensor([-5.0]), Tensor([5.0])).item()
        assert high > low


class TestOptim:
    def test_optimizer_requires_params(self):
        with pytest.raises(ValueError):
            SGD([])

    def _quadratic_descent(self, make_opt, steps=200):
        w = Parameter(np.array([5.0, -3.0]))
        opt = make_opt([w])
        for _ in range(steps):
            loss = (Tensor(w.data * 0) + w * w).sum()  # ||w||^2
            opt.zero_grad()
            loss.backward()
            opt.step()
        return np.abs(w.data).max()

    def test_sgd_converges_on_quadratic(self):
        assert self._quadratic_descent(lambda p: SGD(p, lr=0.1)) < 1e-4

    def test_sgd_momentum_converges(self):
        assert self._quadratic_descent(
            lambda p: SGD(p, lr=0.05, momentum=0.9)) < 1e-4

    def test_adam_converges_on_quadratic(self):
        assert self._quadratic_descent(lambda p: Adam(p, lr=0.3)) < 1e-3

    def test_weight_decay_shrinks_weights(self):
        w = Parameter(np.array([1.0]))
        opt = SGD([w], lr=0.1, weight_decay=1.0)
        w.grad = np.array([0.0])
        opt.step()
        assert w.data[0] < 1.0

    def test_clip_grad_norm(self):
        w = Parameter(np.zeros(4))
        w.grad = np.full(4, 10.0)
        opt = SGD([w], lr=0.1)
        norm = opt.clip_grad_norm(1.0)
        assert norm == pytest.approx(20.0)
        assert np.isclose(np.linalg.norm(w.grad), 1.0)

    def test_step_skips_params_without_grad(self):
        w = Parameter(np.ones(2))
        opt = Adam([w])
        opt.step()  # no grad set — must not crash or move weights
        assert np.allclose(w.data, 1.0)

    def test_linear_regression_end_to_end(self, rng):
        true_w = np.array([[2.0], [-1.0]])
        X = rng.normal(size=(64, 2))
        y = X @ true_w
        layer = Linear(2, 1, rng)
        opt = Adam(list(layer.parameters()), lr=0.05)
        for _ in range(300):
            pred = layer(Tensor(X))
            loss = ((pred - Tensor(y)) ** 2).mean()
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert np.allclose(layer.weight.data, true_w, atol=0.05)
