"""Fused-vs-legacy numerical equivalence (DESIGN §10 regression gate).

The fused message-passing path (``fused=True``: batch-structure cache,
fused kernels, circulant composition, split attention matmuls) must be a
pure *performance* refactor: on a fixed-seed world, forward outputs and
parameter gradients must match the legacy composed-op path to fp64
rounding.  The tolerance here (``1e-10``) is far looser than the
observed differences (~1e-14) but far tighter than anything a semantic
change could satisfy.
"""

import numpy as np
import pytest

from repro.baselines.gat import GAT
from repro.baselines.gnn_common import GNNTrainConfig
from repro.baselines.han import HAN
from repro.baselines.rgcn import RGCN
from repro.core import GraphBatch, HGNConfig, OneSpaceHGN

TOL = 1e-10


def _paper_batch(dataset, num_labeled=30):
    ids = np.arange(num_labeled, dtype=np.intp)
    return GraphBatch.from_graph(dataset.graph, ids, np.zeros(num_labeled))


def _forward_backward(net, out):
    out.sum().backward()
    return {name: (None if p.grad is None else p.grad.copy())
            for name, p in net.named_parameters()}


def _assert_grads_close(grads_fused, grads_legacy):
    assert set(grads_fused) == set(grads_legacy)
    for name in grads_fused:
        gf, gl = grads_fused[name], grads_legacy[name]
        assert (gf is None) == (gl is None), name
        if gf is not None:
            np.testing.assert_allclose(gf, gl, atol=TOL, err_msg=name)


# ----------------------------------------------------------------------
# OneSpaceHGN
# ----------------------------------------------------------------------
@pytest.mark.parametrize("use_attention", [True, False],
                         ids=["attention", "mean"])
@pytest.mark.parametrize("composition", ["corr", "sub", "mult"])
def test_onespace_hgn_fused_equivalence(tiny_dataset, composition,
                                        use_attention):
    batch = _paper_batch(tiny_dataset)
    outs, grads = {}, {}
    for fused in (True, False):
        config = HGNConfig(dim=16, attention_heads=2, seed=0, fused=fused,
                           composition=composition,
                           use_attention=use_attention)
        feature_dims = {t: batch.features[t].shape[1]
                        for t in batch.node_types}
        net = OneSpaceHGN(config, batch.node_types, feature_dims,
                          list(batch.edges.keys()))
        out = net(batch).layers[-1]["paper"]
        outs[fused] = out.data.copy()
        grads[fused] = _forward_backward(net, out)
    np.testing.assert_allclose(outs[True], outs[False], atol=TOL)
    _assert_grads_close(grads[True], grads[False])


def test_onespace_hgn_equivalence_on_augmented_batch(tiny_dataset):
    """Label-input augmented views share the structure cache; the fused
    path must stay exact on them too."""
    base = _paper_batch(tiny_dataset)
    ids = base.labeled_ids
    batch = base.with_label_inputs(ids[:15], np.linspace(0, 1, 15),
                                   ids[15:], np.zeros(15))
    outs = {}
    for fused in (True, False):
        config = HGNConfig(dim=16, attention_heads=2, seed=0, fused=fused)
        feature_dims = {t: batch.features[t].shape[1]
                        for t in batch.node_types}
        net = OneSpaceHGN(config, batch.node_types, feature_dims,
                          list(batch.edges.keys()))
        outs[fused] = net(batch).layers[-1]["paper"].data.copy()
    np.testing.assert_allclose(outs[True], outs[False], atol=TOL)


# ----------------------------------------------------------------------
# GNN baselines
# ----------------------------------------------------------------------
def _baseline_network(cls, dataset, batch, fused):
    config = GNNTrainConfig(dim=16, seed=0, fused=fused)
    model = cls(config)
    if isinstance(model, HAN):
        model._dataset = dataset
    return model.build_network(batch)


@pytest.mark.parametrize("cls", [RGCN, GAT, HAN],
                         ids=lambda c: c.__name__)
def test_baseline_fused_equivalence(tiny_dataset, cls):
    batch = _paper_batch(tiny_dataset)
    outs, grads = {}, {}
    for fused in (True, False):
        net = _baseline_network(cls, tiny_dataset, batch, fused)
        out = net(batch)
        outs[fused] = out.data.copy()
        grads[fused] = _forward_backward(net, out)
    np.testing.assert_allclose(outs[True], outs[False], atol=TOL)
    _assert_grads_close(grads[True], grads[False])
