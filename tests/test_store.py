"""On-disk graph store (DESIGN §15): writer, round-trips, synthesis.

The store's contract is *bitwise fidelity at current scale* plus
*bounded memory at large scale*: a `HeteroGraph` written through
:class:`StoreWriter` must come back identical (CSC order is the same
stable destination sort the message-passing cache uses), and the
chunked spill → CSC conversion must agree with itself regardless of how
the COO edges were chunked on the way in.
"""

import json

import numpy as np
import pytest

from repro.data import (
    GraphStore,
    STORE_FORMAT_VERSION,
    StoreWriter,
    load_graph,
    save_graph,
    synthesize_store,
    write_store_from_dataset,
    write_store_from_graph,
)
from repro.hetnet.schema import AUTHOR, PAPER


def _coo_triples(graph, key):
    edge = graph.edges[key]
    order = np.lexsort((edge.src, edge.dst))
    return (edge.src[order], edge.dst[order], edge.weight[order])


def test_store_round_trip_is_bitwise(tiny_dataset, tmp_path):
    graph = tiny_dataset.graph
    store = write_store_from_dataset(tiny_dataset, tmp_path / "store")

    assert store.num_nodes == dict(graph.num_nodes)
    assert store.edge_keys == list(graph.edges)
    for key in graph.edges:
        csr = graph.csr(key)
        csc = store.csc(key)
        # Same stable destination sort as the in-memory structure cache.
        assert np.array_equal(csc.indptr, csr.indptr)
        assert np.array_equal(csc.indices, csr.src)
        assert np.array_equal(csc.weights, csr.weight)
        assert csc.num_edges == store.num_edges(key) == len(csr.src)
    for node_type, feats in graph.node_features.items():
        assert np.array_equal(store.features(node_type), feats)
    for node_type, attrs in graph.node_attrs.items():
        for name, values in attrs.items():
            assert np.array_equal(store.attr(node_type, name), values)
    assert np.array_equal(store.split("train"), tiny_dataset.train_idx)
    assert np.array_equal(store.split("val"), tiny_dataset.val_idx)
    assert np.array_equal(store.split("test"), tiny_dataset.test_idx)
    assert store.nbytes() > 0


def test_store_to_graph_matches_save_load(tiny_dataset, tmp_path):
    """Materializing the store agrees with the npz round-trip path."""
    graph = tiny_dataset.graph
    store = write_store_from_graph(graph, tmp_path / "store")
    via_store = store.to_graph()
    save_graph(graph, tmp_path / "npz" / "graph")
    via_npz = load_graph(tmp_path / "npz" / "graph")

    assert via_store.num_nodes == via_npz.num_nodes == dict(graph.num_nodes)
    for key in graph.edges:
        # CSC order is a permutation of append order: compare as sets
        # of (src, dst, weight) triples via a canonical sort.
        for a, b in zip(_coo_triples(via_store, key),
                        _coo_triples(via_npz, key)):
            assert np.array_equal(a, b)
    for node_type, feats in graph.node_features.items():
        assert np.array_equal(via_store.node_features[node_type], feats)
    assert via_store.node_names[PAPER] == graph.node_names[PAPER]


def test_writer_rejects_bad_input(tmp_path):
    writer = StoreWriter(tmp_path / "s", {PAPER: 4, AUTHOR: 2})
    key = (AUTHOR, "writes", PAPER)
    with pytest.raises(ValueError, match="out of range"):
        writer.append_edges(key, np.array([0]), np.array([4]))
    with pytest.raises(ValueError, match="out of range"):
        writer.append_edges(key, np.array([-1]), np.array([0]))
    with pytest.raises(ValueError, match="length mismatch"):
        writer.append_edges(key, np.array([0]), np.array([0, 1]))
    with pytest.raises(ValueError, match="rows"):
        writer.set_features(PAPER, np.zeros((3, 2)))
    with pytest.raises(ValueError, match="names length"):
        writer.set_names(PAPER, ["only-one"])
    writer.append_edges(key, np.array([0, 1]), np.array([1, 3]))
    writer.set_features(PAPER, np.zeros((4, 2)))
    writer.finalize()
    with pytest.raises(RuntimeError, match="already called"):
        writer.finalize()
    # A finalized store refuses to be re-opened for writing.
    with pytest.raises(FileExistsError, match="refusing"):
        StoreWriter(tmp_path / "s", {PAPER: 4})


def test_unknown_format_version_rejected(tmp_path):
    writer = StoreWriter(tmp_path / "s", {PAPER: 2})
    writer.set_features(PAPER, np.zeros((2, 2)))
    writer.finalize()
    manifest_path = tmp_path / "s" / "store.json"
    manifest = json.loads(manifest_path.read_text())
    assert manifest["format_version"] == STORE_FORMAT_VERSION
    manifest["format_version"] = STORE_FORMAT_VERSION + 1
    manifest_path.write_text(json.dumps(manifest))
    with pytest.raises(ValueError, match="format_version"):
        GraphStore(tmp_path / "s")


def test_zero_edge_type_round_trips(tmp_path):
    """An edge type with no edges must still produce a readable CSC."""
    writer = StoreWriter(tmp_path / "s", {PAPER: 5, AUTHOR: 3})
    key = (AUTHOR, "writes", PAPER)
    writer.append_edges(key, np.empty(0, dtype=np.int64),
                        np.empty(0, dtype=np.int64))
    store = writer.finalize()
    csc = store.csc(key)
    assert csc.num_edges == 0
    assert np.array_equal(csc.indptr, np.zeros(6, dtype=np.int64))
    assert len(csc.indices) == len(csc.weights) == 0


def test_chunked_spill_matches_single_append(tmp_path):
    """CSC output is invariant to how the COO stream was chunked."""
    rng = np.random.default_rng(7)
    n_src, n_dst, n_edges = 40, 60, 5_000
    src = rng.integers(0, n_src, size=n_edges)
    dst = rng.integers(0, n_dst, size=n_edges)
    weight = rng.random(n_edges)
    key = (AUTHOR, "writes", PAPER)

    one = StoreWriter(tmp_path / "one", {PAPER: n_dst, AUTHOR: n_src})
    one.append_edges(key, src, dst, weight)
    store_one = one.finalize()

    # Tiny sort chunk forces many passes through the two-pass counting
    # sort; appending in ragged slices exercises the spill append path.
    many = StoreWriter(tmp_path / "many", {PAPER: n_dst, AUTHOR: n_src},
                       chunk_edges=617)
    for lo in range(0, n_edges, 997):
        hi = min(lo + 997, n_edges)
        many.append_edges(key, src[lo:hi], dst[lo:hi], weight[lo:hi])
    store_many = many.finalize()

    a, b = store_one.csc(key), store_many.csc(key)
    assert np.array_equal(a.indptr, b.indptr)
    assert np.array_equal(a.indices, b.indices)
    assert np.array_equal(a.weights, b.weights)


def test_synthesize_store_deterministic(tmp_path):
    a = synthesize_store(tmp_path / "a", 600, seed=3, chunk=200)
    b = synthesize_store(tmp_path / "b", 600, seed=3, chunk=200)
    assert a.num_nodes == b.num_nodes
    assert a.edge_keys == b.edge_keys
    for key in a.edge_keys:
        assert np.array_equal(a.csc(key).indices, b.csc(key).indices)
        assert np.array_equal(a.csc(key).weights, b.csc(key).weights)
    for t in a.feature_types:
        assert np.array_equal(a.features(t), b.features(t))
    # A different seed produces a different world.
    c = synthesize_store(tmp_path / "c", 600, seed=4, chunk=200)
    assert not np.array_equal(a.attr(PAPER, "label"), c.attr(PAPER, "label"))


def test_synthesize_store_invariants(tmp_path):
    store = synthesize_store(tmp_path / "s", 800, seed=0, chunk=300)
    years = np.asarray(store.attr(PAPER, "year"))
    labels = np.asarray(store.attr(PAPER, "label"))
    assert np.all(np.diff(years) >= 0), "papers sorted by year"
    assert np.all(labels > 0)

    # Citations only point from strictly earlier (cited) papers into
    # later (citing) ones — the no-leakage direction rule.
    csc = store.csc((PAPER, "cites", PAPER))
    citing = np.repeat(np.arange(csc.num_dst), csc.degrees())
    cited = np.asarray(csc.indices)
    assert np.all(years[cited] < years[citing])

    # The planted label-correlated feature column is actually informative.
    feats = np.asarray(store.features(PAPER))
    corr = np.corrcoef(feats[:, 0], labels)[0, 1]
    assert corr > 0.5

    # Temporal splits partition the papers.
    splits = [np.asarray(store.split(n)) for n in ("train", "val", "test")]
    joined = np.concatenate(splits)
    assert len(np.unique(joined)) == len(joined) == store.num_nodes[PAPER]

    # The store materializes into a valid HeteroGraph at this scale.
    graph = store.to_graph()
    assert graph.num_nodes[PAPER] == 800
