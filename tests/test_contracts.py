"""Unit tests for the contract layer (DESIGN §13).

Complements ``test_contracts_fuzz.py`` (randomized mutation round-trips)
with targeted coverage of the policy front door, the report format, the
batch-level checks C010-C012, and the three integration points: the
``load_graph`` policy parameter, ``GraphBatch.from_graph(validate=...)``,
and the ``CATEHGN.fit`` quarantine event.
"""

import json
import warnings

import numpy as np
import pytest

from repro.contracts import (
    POLICIES,
    ContractViolation,
    ContractWarning,
    Finding,
    ValidationReport,
    check_batch,
    check_graph,
    validate_batch,
    validate_graph,
)
from repro.core.hgn import GraphBatch
from repro.core import CATEHGN, CATEHGNConfig
from repro.data import (
    TextArtifacts,
    generate_world,
    load_graph,
    make_dblp_full,
    save_graph,
)
from repro.hetnet.graph import EdgeArray
from repro.hetnet.schema import PAPER

from .conftest import tiny_config
from .test_contracts_fuzz import _clone

CITES = (PAPER, "cites", PAPER)

_WORLD = generate_world(tiny_config(num_papers=80, num_authors=30))
_DATASET = make_dblp_full(world=_WORLD,
                          text=TextArtifacts.fit(_WORLD, dim=8))


def _dangle(graph):
    """Append one dangling cites edge in place."""
    edge = graph.edges[CITES]
    graph.edges[CITES] = EdgeArray(
        np.append(edge.src, graph.num_nodes[PAPER] + 3),
        np.append(edge.dst, 0),
        np.append(edge.weight, 1.0))
    graph._topology_version += 1
    return graph


def _batch(graph, **kwargs):
    ds = _DATASET
    return GraphBatch.from_graph(graph, ds.train_idx,
                                 ds.labels[ds.train_idx], **kwargs)


# ----------------------------------------------------------------------
# Policy front door
# ----------------------------------------------------------------------
class TestPolicies:
    def test_unknown_policy_rejected(self):
        graph = _clone(_DATASET.graph)
        with pytest.raises(ValueError, match="unknown validation policy"):
            validate_graph(graph, policy="paranoid")
        assert POLICIES == ("strict", "repair", "warn")

    def test_clean_graph_identity_under_every_policy(self):
        graph = _clone(_DATASET.graph)
        for policy in POLICIES:
            out, report = validate_graph(graph, policy=policy)
            assert out is graph
            assert report.ok

    def test_strict_raises_with_report_attached(self):
        graph = _dangle(_clone(_DATASET.graph))
        with pytest.raises(ContractViolation) as excinfo:
            validate_graph(graph, policy="strict", subject="unit graph")
        report = excinfo.value.report
        assert "C002" in report.codes()
        assert report.subject == "unit graph"
        assert "C002" in str(excinfo.value)

    def test_warn_returns_input_and_warns_once(self):
        graph = _dangle(_clone(_DATASET.graph))
        with pytest.warns(ContractWarning) as captured:
            out, report = validate_graph(graph, policy="warn")
        assert out is graph
        assert report.has_errors
        assert len(captured) == 1

    def test_repair_rebuilds_and_counts(self):
        graph = _dangle(_clone(_DATASET.graph))
        before = graph.edges[CITES].num_edges
        fixed, report = validate_graph(graph, policy="repair")
        assert fixed is not graph
        assert report.repaired.get("C002") == 1
        assert fixed.edges[CITES].num_edges == before - 1
        assert check_graph(fixed).ok


# ----------------------------------------------------------------------
# Report format
# ----------------------------------------------------------------------
class TestReport:
    def test_summary_counts_and_codes(self):
        report = ValidationReport(subject="graph")
        report.add("C002", "error", "paper-cites->paper", 3, "dangling")
        report.add("C008", "info", "paper.names", 1, "dup names")
        assert report.summary() == "graph: 1 error, 1 info (C002 C008)"
        assert report.has_errors and not report.ok

    def test_clean_summary(self):
        assert ValidationReport(subject="x").summary() == "x: clean"

    def test_to_dict_json_safe(self):
        report = ValidationReport()
        report.add("C005", "error", "paper.features", 2, "NaN",
                   sample=np.array([4, 9]), repair="zero them")
        report.repaired["C005"] = 2
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["errors"] == 1
        assert payload["findings"][0]["sample"] == [4, 9]
        assert payload["repaired"] == {"C005": 2}

    def test_sample_is_bounded(self):
        finding = Finding("C002", "error", "e", 100, "m",
                          sample=tuple(range(100)))
        assert len(finding.sample) == 8  # MAX_SAMPLE

    def test_bad_severity_rejected(self):
        with pytest.raises(ValueError, match="unknown severity"):
            Finding("C001", "fatal", "x", 1, "m")

    def test_render_mentions_repair_hint(self):
        report = ValidationReport()
        report.add("C004", "error", "paper-cites->paper", 1,
                   "future citation", repair="drop the edge")
        assert "repair: drop the edge" in report.render()


# ----------------------------------------------------------------------
# Batch contracts C010-C012
# ----------------------------------------------------------------------
class TestBatchContracts:
    def test_clean_batch_passes(self):
        batch = _batch(_clone(_DATASET.graph))
        assert check_batch(batch).ok

    def test_c010_out_of_range_and_duplicate_ids(self):
        batch = _batch(_clone(_DATASET.graph))
        ids = batch.labeled_ids.copy()
        ids[0] = _DATASET.graph.num_nodes[PAPER] + 5
        ids[2] = ids[1]
        batch.labeled_ids = ids
        report = check_batch(batch)
        assert report.codes() == ["C010"]
        fixed, rep = validate_batch(batch, policy="repair")
        assert check_batch(fixed).ok
        assert len(fixed.labeled_ids) == len(ids) - 2
        assert rep.repaired.get("C010") == 2

    def test_c011_misaligned_and_nonfinite_labels(self):
        batch = _batch(_clone(_DATASET.graph))
        labels = batch.labels.copy()
        labels[1] = np.nan
        batch.labels = labels[:-1]
        report = check_batch(batch)
        assert report.codes() == ["C011"]
        fixed, _ = validate_batch(batch, policy="repair")
        recheck = check_batch(fixed)
        assert recheck.ok
        assert len(fixed.labels) == len(fixed.labeled_ids)
        assert np.isfinite(fixed.labels).all()

    def test_c012_nonfinite_normalized_weight(self):
        batch = _batch(_clone(_DATASET.graph))
        src, dst, weight, norm = batch.edges[CITES]
        norm = norm.copy()
        norm[0] = np.inf
        batch.edges[CITES] = (src, dst, weight, norm)
        report = check_batch(batch)
        assert "C012" in report.codes()
        fixed, _ = validate_batch(batch, policy="repair")
        assert check_batch(fixed).ok
        assert np.isfinite(fixed.edges[CITES][3]).all()

    def test_strict_batch_raises(self):
        batch = _batch(_clone(_DATASET.graph))
        batch.labels = batch.labels[:-1]
        with pytest.raises(ContractViolation):
            validate_batch(batch, policy="strict")


# ----------------------------------------------------------------------
# Integration: from_graph(validate=...)
# ----------------------------------------------------------------------
class TestFromGraphValidate:
    def test_clean_validate_is_identity_shape(self):
        batch = _batch(_clone(_DATASET.graph), validate="strict")
        assert len(batch.labeled_ids) == len(_DATASET.train_idx)

    def test_bad_labels_strict_raises(self):
        graph = _clone(_DATASET.graph)
        ids = np.append(_DATASET.train_idx,
                        graph.num_nodes[PAPER] + 1)
        labels = np.append(_DATASET.labels[_DATASET.train_idx], 1.0)
        with pytest.raises(ContractViolation):
            GraphBatch.from_graph(graph, ids, labels, validate="strict")

    def test_bad_labels_repair_quarantines(self):
        graph = _clone(_DATASET.graph)
        ids = np.append(_DATASET.train_idx,
                        graph.num_nodes[PAPER] + 1)
        labels = np.append(_DATASET.labels[_DATASET.train_idx], 1.0)
        batch = GraphBatch.from_graph(graph, ids, labels,
                                      validate="repair")
        assert len(batch.labeled_ids) == len(_DATASET.train_idx)
        assert check_batch(batch).ok

    def test_validate_none_skips_checks(self):
        graph = _clone(_DATASET.graph)
        ids = np.array([graph.num_nodes[PAPER] + 1], dtype=np.intp)
        batch = GraphBatch.from_graph(graph, ids, np.array([1.0]))
        assert not check_batch(batch).ok  # poison survived: no validation


# ----------------------------------------------------------------------
# Integration: load_graph(policy=...)
# ----------------------------------------------------------------------
class TestLoadGraphPolicy:
    @pytest.fixture()
    def poisoned_export(self, tmp_path):
        graph = _dangle(_clone(_DATASET.graph))
        base = tmp_path / "poisoned"
        save_graph(graph, base)
        return base

    def test_legacy_none_policy_raises_valueerror(self, poisoned_export):
        with pytest.raises(ValueError):
            load_graph(poisoned_export)

    def test_strict_policy_raises_contract_violation(self, poisoned_export):
        with pytest.raises(ContractViolation) as excinfo:
            load_graph(poisoned_export, policy="strict")
        assert "C002" in excinfo.value.report.codes()

    def test_repair_policy_returns_clean_graph(self, poisoned_export):
        graph = load_graph(poisoned_export, policy="repair")
        assert check_graph(graph).ok
        graph.validate()

    def test_warn_policy_returns_poisoned_graph(self, poisoned_export):
        with pytest.warns(ContractWarning):
            graph = load_graph(poisoned_export, policy="warn")
        assert not check_graph(graph).ok

    def test_clean_roundtrip_under_strict(self, tmp_path):
        base = tmp_path / "clean"
        save_graph(_clone(_DATASET.graph), base)
        graph = load_graph(base, policy="strict")
        assert check_graph(graph).ok


# ----------------------------------------------------------------------
# Integration: CATEHGN.fit quarantine event
# ----------------------------------------------------------------------
def _fast_config():
    return CATEHGNConfig(dim=8, num_layers=1, outer_iters=1, mini_iters=1,
                         center_iters=1, kappa=8, num_clusters=3,
                         patience=5, seed=0)


class TestFitQuarantine:
    def test_poisoned_fit_records_one_quarantine_event(self):
        from dataclasses import replace

        poisoned = replace(_DATASET, graph=_dangle(_clone(_DATASET.graph)))
        est = CATEHGN(_fast_config()).fit(poisoned, validate="repair")
        events = [e for e in est.history.events
                  if e.get("type") == "quarantine"]
        assert len(events) == 1
        assert events[0]["policy"] == "repair"
        assert events[0]["report"]["repaired"] == {"C002": 1}
        json.dumps(events[0])  # JSON-safe end to end

    def test_clean_fit_records_no_quarantine(self):
        est = CATEHGN(_fast_config()).fit(_DATASET, validate="repair")
        assert not [e for e in est.history.events
                    if e.get("type") == "quarantine"]

    def test_strict_fit_refuses_poisoned_dataset(self):
        from dataclasses import replace

        poisoned = replace(_DATASET, graph=_dangle(_clone(_DATASET.graph)))
        with pytest.raises(ContractViolation):
            CATEHGN(_fast_config()).fit(poisoned, validate="strict")
