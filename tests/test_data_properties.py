"""Property-based tests (hypothesis) on the data substrate invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import WorldConfig, generate_world, temporal_split
from repro.data.dblp import TRAIN_BEFORE

from .conftest import TINY_DOMAINS


@settings(max_examples=10, deadline=None)
@given(
    num_papers=st.integers(min_value=30, max_value=120),
    num_authors=st.integers(min_value=10, max_value=40),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_world_invariants(num_papers, num_authors, seed):
    """Any reasonable config yields a structurally valid world."""
    world = generate_world(WorldConfig(
        num_papers=num_papers, num_authors=num_authors,
        venues_per_domain=1, seed=seed, domain_names=TINY_DOMAINS,
    ))
    years = world.years()
    labels = world.labels()
    assert len(world.papers) == num_papers
    assert np.all(labels > 0)
    assert np.all(np.diff(years) >= 0)
    for paper in world.papers:
        assert paper.author_ids, "every paper has at least one author"
        assert len(set(paper.author_ids)) == len(paper.author_ids)
        assert 0 <= paper.venue_id < len(world.venues)
        assert paper.title, "every paper has a title"
        for ref in paper.references:
            assert world.papers[ref].year < paper.year


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_labels_reflect_impact_monotonically(seed):
    """Papers in the top impact quartile out-cite the bottom quartile."""
    world = generate_world(WorldConfig(
        num_papers=100, num_authors=30, venues_per_domain=1, seed=seed,
        domain_names=TINY_DOMAINS,
    ))
    impacts = np.array([p.impact for p in world.papers])
    labels = world.labels()
    lo, hi = np.quantile(impacts, [0.25, 0.75])
    assert labels[impacts >= hi].mean() > labels[impacts <= lo].mean()


@settings(max_examples=20, deadline=None)
@given(years=st.lists(st.integers(min_value=2004, max_value=2020),
                      min_size=1, max_size=60))
def test_temporal_split_is_partition(years):
    arr = np.array(sorted(years))
    train, val, test = temporal_split(arr)
    joined = np.concatenate([train, val, test])
    assert len(joined) == len(arr)
    assert len(np.unique(joined)) == len(arr)
    assert np.all(arr[train] < TRAIN_BEFORE)
