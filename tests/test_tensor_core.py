"""Unit tests for the autodiff Tensor core: arithmetic, shapes, backward."""

import numpy as np
import pytest

from repro.tensor import Tensor, numerical_gradient, unbroadcast


def gradcheck(build, *tensors, tol=1e-5):
    """Compare analytic and numeric gradients of scalar ``build()``."""
    out = build()
    for t in tensors:
        t.zero_grad()
    out = build()
    out.backward()
    for t in tensors:
        numeric = numerical_gradient(build, t)
        assert t.grad is not None, "missing gradient"
        assert np.allclose(t.grad, numeric, atol=tol), (
            f"grad mismatch: max err {np.abs(t.grad - numeric).max()}"
        )


class TestBasics:
    def test_construction_and_dtype(self):
        t = Tensor([1, 2, 3])
        assert t.data.dtype == np.float64
        assert t.shape == (3,)
        assert len(t) == 3

    def test_repr_mentions_requires_grad(self):
        assert "requires_grad" in repr(Tensor(1.0, requires_grad=True))
        assert "requires_grad" not in repr(Tensor(1.0))

    def test_item_and_numpy(self):
        t = Tensor(5.0)
        assert t.item() == 5.0
        assert t.numpy() is t.data

    def test_detach_cuts_tape(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = (x * 2).detach()
        z = (y * 3).sum()
        z.backward()
        assert x.grad is None

    def test_backward_requires_scalar(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            (x * 2).backward()

    def test_backward_with_explicit_gradient(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = x * 3
        y.backward(np.array([1.0, 10.0]))
        assert np.allclose(x.grad, [3.0, 30.0])

    def test_gradient_accumulates_over_reuse(self):
        x = Tensor([2.0], requires_grad=True)
        y = (x * x + x).sum()  # dy/dx = 2x + 1 = 5
        y.backward()
        assert np.allclose(x.grad, [5.0])


class TestArithmetic:
    def test_add_sub_mul_div_values(self):
        a, b = Tensor([4.0, 9.0]), Tensor([2.0, 3.0])
        assert np.allclose((a + b).data, [6, 12])
        assert np.allclose((a - b).data, [2, 6])
        assert np.allclose((a * b).data, [8, 27])
        assert np.allclose((a / b).data, [2, 3])

    def test_reflected_operators(self):
        a = Tensor([2.0])
        assert np.allclose((3 + a).data, [5])
        assert np.allclose((3 - a).data, [1])
        assert np.allclose((3 * a).data, [6])
        assert np.allclose((8 / a).data, [4])

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])

    def test_gradcheck_elementwise_chain(self, rng):
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        y = Tensor(rng.normal(size=(3, 4)) + 3.0, requires_grad=True)
        gradcheck(lambda: ((x * y - x / y + y**2) * 0.5).sum(), x, y)

    def test_gradcheck_broadcast_add(self, rng):
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4,)), requires_grad=True)
        gradcheck(lambda: ((x + b) ** 2).sum(), x, b)

    def test_gradcheck_broadcast_mul_scalar_tensor(self, rng):
        x = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        s = Tensor(2.5, requires_grad=True)
        gradcheck(lambda: (x * s).sum(), x, s)


class TestMatmul:
    def test_matmul_2d(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
        gradcheck(lambda: (a @ b).sum(), a, b)

    def test_matmul_vector_matrix(self, rng):
        a = Tensor(rng.normal(size=4), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
        gradcheck(lambda: (a @ b).sum(), a, b)

    def test_matmul_matrix_vector(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=4), requires_grad=True)
        gradcheck(lambda: (a @ b).sum(), a, b)

    def test_matmul_vector_vector(self, rng):
        a = Tensor(rng.normal(size=4), requires_grad=True)
        b = Tensor(rng.normal(size=4), requires_grad=True)
        gradcheck(lambda: (a @ b) * 1.0, a, b)


class TestShapeOps:
    def test_reshape_roundtrip(self, rng):
        x = Tensor(rng.normal(size=(2, 6)), requires_grad=True)
        gradcheck(lambda: (x.reshape(3, 4) ** 2).sum(), x)

    def test_reshape_tuple_argument(self):
        x = Tensor(np.arange(6.0))
        assert x.reshape((2, 3)).shape == (2, 3)

    def test_flatten(self):
        assert Tensor(np.zeros((2, 3))).flatten().shape == (6,)

    def test_transpose_and_T(self, rng):
        x = Tensor(rng.normal(size=(2, 5)), requires_grad=True)
        assert x.T.shape == (5, 2)
        gradcheck(lambda: (x.T @ x).sum(), x)

    def test_transpose_axes(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        gradcheck(lambda: (x.transpose(1, 0, 2) ** 2).sum(), x)

    def test_getitem_int_rows(self, rng):
        x = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
        idx = np.array([0, 2, 2, 4])
        gradcheck(lambda: (x[idx] ** 2).sum(), x)

    def test_getitem_column(self, rng):
        x = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
        gradcheck(lambda: (x[:, 1] ** 2).sum(), x)


class TestReductions:
    def test_sum_axes(self, rng):
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        gradcheck(lambda: (x.sum(axis=0) ** 2).sum(), x)
        x.zero_grad()
        gradcheck(lambda: (x.sum(axis=1, keepdims=True) ** 2).sum(), x)

    def test_mean_value(self):
        x = Tensor([[1.0, 3.0], [5.0, 7.0]])
        assert x.mean().item() == 4.0
        assert np.allclose(x.mean(axis=0).data, [3.0, 5.0])

    def test_mean_grad(self, rng):
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        gradcheck(lambda: (x.mean(axis=1) ** 2).sum(), x)

    def test_max_grad_no_ties(self):
        x = Tensor(np.array([[1.0, 5.0, 2.0]]), requires_grad=True)
        y = x.max(axis=1).sum()
        y.backward()
        assert np.allclose(x.grad, [[0.0, 1.0, 0.0]])

    def test_max_splits_ties(self):
        x = Tensor(np.array([3.0, 3.0]), requires_grad=True)
        x.max().backward()
        assert np.allclose(x.grad, [0.5, 0.5])


class TestNonlinearities:
    @pytest.mark.parametrize("fn", [
        lambda t: t.exp(), lambda t: t.sigmoid(), lambda t: t.tanh(),
        lambda t: t.softplus(), lambda t: t.relu(),
        lambda t: t.leaky_relu(0.1), lambda t: t.abs(),
    ])
    def test_gradcheck_activations(self, fn, rng):
        # Offset away from 0 so relu/abs kinks don't break finite diffs.
        x = Tensor(rng.normal(size=(3, 3)) * 2 + 0.3, requires_grad=True)
        gradcheck(lambda: fn(x).sum(), x)

    def test_log_sqrt(self, rng):
        x = Tensor(rng.random((3, 3)) + 0.5, requires_grad=True)
        gradcheck(lambda: (x.log() + x.sqrt()).sum(), x)

    def test_sigmoid_extreme_values_stable(self):
        x = Tensor([-1000.0, 1000.0])
        s = x.sigmoid().data
        assert np.all(np.isfinite(s))
        assert s[0] < 1e-10 and s[1] > 1 - 1e-10

    def test_softplus_matches_reference(self):
        x = Tensor([-2.0, 0.0, 3.0])
        assert np.allclose(x.softplus().data, np.log1p(np.exp(x.data)))

    def test_clip(self):
        x = Tensor([-1.0, 0.5, 2.0], requires_grad=True)
        y = x.clip(0.0, 1.0)
        assert np.allclose(y.data, [0.0, 0.5, 1.0])
        y.sum().backward()
        assert np.allclose(x.grad, [0.0, 1.0, 0.0])


class TestUnbroadcast:
    def test_noop_when_shapes_match(self):
        g = np.ones((2, 3))
        assert unbroadcast(g, (2, 3)) is g

    def test_sums_leading_axis(self):
        g = np.ones((4, 2, 3))
        assert unbroadcast(g, (2, 3)).shape == (2, 3)
        assert np.all(unbroadcast(g, (2, 3)) == 4)

    def test_sums_kept_axis_of_size_one(self):
        g = np.ones((2, 3))
        out = unbroadcast(g, (2, 1))
        assert out.shape == (2, 1)
        assert np.all(out == 3)

    def test_deep_tape_does_not_overflow(self):
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 0.001
        y.sum().backward()
        assert np.allclose(x.grad, [1.0])
