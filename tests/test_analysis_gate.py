"""Unified analysis gate: exit codes, rule routing, and the tier-1
"tree stays clean" guarantee for the concurrency rules."""

import io
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.__main__ import main as gate_main
from repro.analysis.__main__ import run_gate

REPO_ROOT = Path(__file__).resolve().parents[1]

LINT_DIRTY = (
    "import numpy as np\n"
    "x = np.random.rand(3)\n"
)

CONC_DIRTY = (
    "import threading\n"
    "\n"
    "class Reent:\n"
    "    def __init__(self):\n"
    "        self._lock = threading.Lock()\n"
    "\n"
    "    def boom(self):\n"
    "        with self._lock:\n"
    "            with self._lock:\n"
    "                pass\n"
)

CLEAN = "def fine():\n    return 1\n"


def write_tree(tmp_path, **files):
    for name, text in files.items():
        (tmp_path / f"{name}.py").write_text(text)
    return str(tmp_path)


class TestExitCodes:
    def test_0_clean(self, tmp_path):
        assert run_gate([write_tree(tmp_path, a=CLEAN)], out=io.StringIO()) == 0

    def test_1_lint_only(self, tmp_path):
        path = write_tree(tmp_path, a=LINT_DIRTY)
        assert run_gate([path], out=io.StringIO()) == 1

    def test_2_concurrency_only(self, tmp_path):
        path = write_tree(tmp_path, a=CONC_DIRTY)
        assert run_gate([path], out=io.StringIO()) == 2

    def test_3_both(self, tmp_path):
        path = write_tree(tmp_path, a=LINT_DIRTY, b=CONC_DIRTY)
        assert run_gate([path], out=io.StringIO()) == 3


class TestRuleRouting:
    def test_select_one_prong_skips_other(self, tmp_path):
        path = write_tree(tmp_path, a=LINT_DIRTY, b=CONC_DIRTY)
        # Selecting only an A-rule must not even report the lint dirt.
        assert run_gate([path], select="A004", out=io.StringIO()) == 2
        assert run_gate([path], select="R002", out=io.StringIO()) == 1

    def test_mixed_select(self, tmp_path):
        path = write_tree(tmp_path, a=LINT_DIRTY, b=CONC_DIRTY)
        assert run_gate([path], select="R002,A004", out=io.StringIO()) == 3

    def test_ignore_routes_across_prongs(self, tmp_path):
        path = write_tree(tmp_path, a=LINT_DIRTY, b=CONC_DIRTY)
        assert run_gate([path], ignore="R002,A004", out=io.StringIO()) == 0

    def test_unknown_rule_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown"):
            run_gate([str(tmp_path)], select="Z999", out=io.StringIO())

    def test_json_report_shape(self, tmp_path, capsys):
        path = write_tree(tmp_path, a=LINT_DIRTY, b=CONC_DIRTY)
        code = gate_main([path, "--format", "json"])
        report = json.loads(capsys.readouterr().out)
        assert code == report["exit_code"] == 3
        assert report["lint"]["count"] == 1
        assert report["concurrency"]["count"] == 1
        assert report["lint"]["violations"][0]["rule"] == "R002"
        assert report["concurrency"]["violations"][0]["rule"] == "A004"


class TestCLI:
    def test_list_rules_covers_both_catalogues(self, capsys):
        assert gate_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "R001" in out and "A001" in out

    def test_subcommand_dispatch(self, tmp_path, capsys):
        path = write_tree(tmp_path, a=LINT_DIRTY)
        assert gate_main(["lint", path]) == 1
        assert gate_main(["concurrency", path]) == 0

    def test_module_entrypoint_gate_on_tree(self):
        """The acceptance criterion: `python -m repro.analysis gate` == 0."""
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "gate"],
            capture_output=True, text=True, cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr


class TestTreeStaysClean:
    """tier-1 gate: zero A-rule violations across the shipped tree."""

    def test_gate_clean_in_process(self):
        roots = [
            str(REPO_ROOT / name)
            for name in ("src", "benchmarks", "examples")
            if (REPO_ROOT / name).is_dir()
        ]
        assert run_gate(roots, out=io.StringIO()) == 0
