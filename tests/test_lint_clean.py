"""Tier-1 gate: the repo's own sources must be lint-clean.

``repro-lint`` (a.k.a. ``python -m repro.analysis.lint src/``) enforces the
tape/reproducibility invariants of R001-R004; this test keeps the tree
clean going forward — any PR that introduces a violation fails here with
the linter's own file:line report.
"""

from pathlib import Path

from repro.analysis.lint import lint_paths

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_src_tree_is_lint_clean():
    violations = lint_paths([str(REPO_ROOT / "src")])
    report = "\n".join(str(v) for v in violations)
    assert not violations, f"repro-lint violations in src/:\n{report}"


def test_examples_and_benchmarks_are_lint_clean():
    paths = [REPO_ROOT / "examples", REPO_ROOT / "benchmarks"]
    existing = [str(p) for p in paths if p.exists()]
    violations = lint_paths(existing)
    report = "\n".join(str(v) for v in violations)
    assert not violations, f"repro-lint violations:\n{report}"
