"""White-box tests of the GNN baselines' internal mechanics."""

import numpy as np
import pytest

from repro.core.hgn import GraphBatch
from repro.baselines.gat import GATLayer
from repro.baselines.han import SemanticAttention, paper_metapath_adjacency
from repro.baselines.hetgnn import rwr_neighbors
from repro.baselines.magnn import metapath_instances
from repro.tensor import Tensor


@pytest.fixture(scope="module")
def batch(tiny_dataset):
    return GraphBatch.from_graph(tiny_dataset.graph, tiny_dataset.train_idx,
                                 tiny_dataset.labels[tiny_dataset.train_idx])


class TestGATLayer:
    def test_attention_is_convex_combination(self, rng):
        layer = GATLayer(4, 4, heads=2, rng=rng)
        h = Tensor(rng.normal(size=(5, 4)))
        src = np.array([0, 1, 2, 3, 4, 0])
        dst = np.array([1, 1, 1, 2, 2, 0])
        out = layer(h, src, dst, 5)
        assert out.shape == (5, 4)
        # Node with no in-edges aggregates to zero.
        assert np.allclose(out.data[3], 0.0)
        assert np.allclose(out.data[4], 0.0)

    def test_single_neighbor_passes_message_through(self, rng):
        layer = GATLayer(4, 4, heads=1, rng=rng)
        h = Tensor(rng.normal(size=(3, 4)))
        out = layer(h, np.array([0]), np.array([1]), 3)
        wh = (h @ layer.W.weight).data
        # alpha for a single in-edge is exactly 1.
        assert np.allclose(out.data[1], wh[0])


class TestHANInternals:
    def test_semantic_attention_convex(self, rng):
        att = SemanticAttention(4, 4, rng)
        zs = [Tensor(rng.normal(size=(6, 4))) for _ in range(3)]
        combined = att(zs).data
        lo = np.minimum.reduce([z.data for z in zs])
        hi = np.maximum.reduce([z.data for z in zs])
        assert np.all(combined >= lo - 1e-9)
        assert np.all(combined <= hi + 1e-9)

    def test_metapath_adjacency_includes_self_loops(self, tiny_dataset):
        paths = paper_metapath_adjacency(tiny_dataset, max_pairs=1000, seed=0)
        assert len(paths) == 4  # P-P, P-A-P, P-V-P, P-T-P
        n = tiny_dataset.num_papers
        for src, dst in paths:
            pairs = set(zip(src.tolist(), dst.tolist()))
            assert all((i, i) in pairs for i in range(n))


class TestMAGNNInstances:
    def test_instances_cover_expected_paths(self, tiny_dataset):
        rng = np.random.default_rng(0)
        instances = metapath_instances(tiny_dataset.graph, max_per_mid=4,
                                       rng=rng)
        mid_types = [mid_type for _s, _m, _e, mid_type in instances]
        assert mid_types[0] is None  # P-P
        assert set(mid_types[1:]) == {"author", "venue", "term"}

    def test_instances_exclude_self_pairs(self, tiny_dataset):
        rng = np.random.default_rng(0)
        for src, mid, dst, mid_type in metapath_instances(
                tiny_dataset.graph, max_per_mid=4, rng=rng):
            if mid_type is not None:
                assert np.all(src != dst)

    def test_mid_cap_respected(self, tiny_dataset):
        rng = np.random.default_rng(0)
        cap = 3
        for src, mid, dst, mid_type in metapath_instances(
                tiny_dataset.graph, max_per_mid=cap, rng=rng):
            if mid_type is None:
                continue
            counts = np.bincount(mid)
            # Each mid node emits at most cap*(cap-1) ordered pairs.
            assert counts.max() <= cap * (cap - 1)


class TestHetGNNSampling:
    def test_rwr_neighbors_typed_and_owned(self, tiny_dataset):
        rng = np.random.default_rng(0)
        neighbors = rwr_neighbors(tiny_dataset.graph, restarts=0.3,
                                  walks=3, length=4, top_k=5, rng=rng)
        for node_type, (ids, owners) in neighbors.items():
            assert len(ids) == len(owners)
            if len(ids):
                assert ids.max() < tiny_dataset.graph.num_nodes[node_type]
                assert owners.max() < tiny_dataset.num_papers

    def test_rwr_topk_bound(self, tiny_dataset):
        rng = np.random.default_rng(0)
        top_k = 3
        neighbors = rwr_neighbors(tiny_dataset.graph, restarts=0.3,
                                  walks=3, length=4, top_k=top_k, rng=rng)
        for _t, (ids, owners) in neighbors.items():
            if len(owners):
                per_paper = np.bincount(owners)
                assert per_paper.max() <= top_k


class TestCLI:
    def test_module_entrypoint_parses(self):
        from repro.eval.__main__ import main

        with pytest.raises(SystemExit):
            main(["--papers", "10"])  # missing experiment -> argparse exit
