"""Property-based tests (hypothesis) for the autodiff substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.tensor import (
    Tensor,
    circular_correlation,
    gather,
    segment_softmax,
    segment_sum,
    softmax,
)

finite_floats = st.floats(min_value=-50, max_value=50, allow_nan=False,
                          allow_infinity=False)


def arrays(shape):
    return hnp.arrays(np.float64, shape, elements=finite_floats)


@settings(max_examples=40, deadline=None)
@given(arrays((4, 3)), arrays((4, 3)))
def test_addition_commutes(a, b):
    assert np.allclose((Tensor(a) + Tensor(b)).data,
                       (Tensor(b) + Tensor(a)).data)


@settings(max_examples=40, deadline=None)
@given(arrays((3, 3)), arrays((3, 3)), arrays((3, 3)))
def test_matmul_distributes_over_addition(a, b, c):
    left = (Tensor(a) @ (Tensor(b) + Tensor(c))).data
    right = (Tensor(a) @ Tensor(b) + Tensor(a) @ Tensor(c)).data
    assert np.allclose(left, right, atol=1e-6)


@settings(max_examples=40, deadline=None)
@given(arrays((5,)))
def test_softmax_is_probability_vector(x):
    out = softmax(Tensor(x), axis=0).data
    assert np.all(out >= 0)
    assert np.isclose(out.sum(), 1.0)


@settings(max_examples=40, deadline=None)
@given(arrays((5,)), st.floats(min_value=-3, max_value=3))
def test_softmax_shift_invariance(x, shift):
    assert np.allclose(softmax(Tensor(x), axis=0).data,
                       softmax(Tensor(x + shift), axis=0).data, atol=1e-8)


@settings(max_examples=40, deadline=None)
@given(arrays((6, 2)), st.integers(min_value=1, max_value=4))
def test_segment_sum_conserves_mass(x, num_segments):
    seg = np.arange(6) % num_segments
    out = segment_sum(Tensor(x), seg, num_segments).data
    assert np.allclose(out.sum(axis=0), x.sum(axis=0), atol=1e-8)


@settings(max_examples=40, deadline=None)
@given(arrays((6,)))
def test_segment_softmax_normalizes_within_segments(scores):
    seg = np.array([0, 0, 1, 1, 1, 2])
    out = segment_softmax(Tensor(scores), seg, 3).data
    for s in range(3):
        assert np.isclose(out[seg == s].sum(), 1.0, atol=1e-8)


@settings(max_examples=40, deadline=None)
@given(arrays((4, 3)))
def test_gather_then_segment_sum_roundtrip(x):
    """Sum of gathered copies equals multiplicity-weighted original."""
    idx = np.array([0, 1, 1, 2, 3, 3, 3])
    out = segment_sum(gather(Tensor(x), idx), idx, 4).data
    mult = np.array([1, 2, 1, 3])[:, None]
    assert np.allclose(out, x * mult, atol=1e-8)


@settings(max_examples=30, deadline=None)
@given(arrays((8,)), arrays((8,)))
def test_circular_correlation_parseval_consistency(a, b):
    """corr(a, b) summed equals sum(a) * sum(b) (the k-sum telescopes)."""
    out = circular_correlation(Tensor(a), Tensor(b)).data
    assert np.allclose(out.sum(), a.sum() * b.sum(), atol=1e-6)


@settings(max_examples=30, deadline=None)
@given(arrays((3, 4)))
def test_sum_backward_is_ones(x):
    t = Tensor(x, requires_grad=True)
    t.sum().backward()
    assert np.allclose(t.grad, np.ones_like(x))


@settings(max_examples=30, deadline=None)
@given(arrays((3, 4)), arrays((3, 4)))
def test_product_rule_gradient(a, b):
    ta = Tensor(a, requires_grad=True)
    tb = Tensor(b, requires_grad=True)
    (ta * tb).sum().backward()
    assert np.allclose(ta.grad, b)
    assert np.allclose(tb.grad, a)
