"""Golden headline metrics: frozen seed-0 CATE-HGN MAE/RMSE.

These constants pin the *exact* numerical behaviour of the default
(fused) engine on fixed-seed worlds.  Any change that alters training
semantics — a kernel that is not bit-compatible-within-rounding, a
different iteration order, a changed default hyper-parameter — shows up
here first, with a diff far larger than the fp64-reordering tolerance.

Regenerating after an *intentional* semantic change
---------------------------------------------------
Tier-1 constants (tiny world)::

    PYTHONPATH=src python - <<'PY'
    from tests.test_golden_metrics import _tiny_metrics
    print(_tiny_metrics())
    PY

Bench-scale constants (Table-II headline, ``-m slow`` test)::

    PYTHONPATH=src:. python - <<'PY'
    from benchmarks.common import bench_datasets, bench_config
    from repro.core import CATEHGN
    from repro.eval.metrics import mae, rmse
    ds = bench_datasets()["full"]
    m = CATEHGN(bench_config()).fit(ds)
    p = m.predict(ds)[ds.test_idx]; y = ds.labels[ds.test_idx]
    print(f"MAE={mae(y, p):.10f} RMSE={rmse(y, p):.10f}")
    PY

Paste the printed values into the ``GOLDEN_*`` constants below and
explain the semantic change in the commit message.
"""

import numpy as np
import pytest

from repro.core import CATEHGN, CATEHGNConfig
from repro.eval.metrics import mae, rmse

# Tiny-world golden values (fused engine, seed 0; see module docstring).
GOLDEN_TINY_MAE = 1.2196741611
GOLDEN_TINY_RMSE = 1.5528355533

# Bench-scale Table-II headline (DBLP-full, CATE_SETTINGS, fused engine).
GOLDEN_BENCH_MAE = 2.3047628003
GOLDEN_BENCH_RMSE = 2.9585706420  # Table-II "CATE-HGN / DBLP-full": 2.9586

# Minibatch (neighbor-sampled) golden values on the same tiny world,
# sampler batch_size=64 / fanouts=8 / seed=0 (test_golden_minibatch_parity).
GOLDEN_TINY_MINI_MAE = 1.2314770941
GOLDEN_TINY_MINI_RMSE = 1.5589871603

# Sampled training follows a different (but converged) trajectory, so it
# is only required to land *near* the full-batch optimum, not on it.
# The observed gap on this world is ~0.012 MAE / ~0.006 RMSE; 0.05
# absolute (~4% relative) is the pinned parity contract.
MINIBATCH_PARITY_TOL = 0.05

# Same-container runs are bit-deterministic; the tolerance only allows
# for BLAS kernel-dispatch differences across machines.
TOL = 1e-6


def _tiny_model_config() -> CATEHGNConfig:
    return CATEHGNConfig(dim=16, attention_heads=2, outer_iters=6,
                         mini_iters=4, seed=0)


def _tiny_metrics(dataset=None):
    if dataset is None:  # regeneration path (module docstring)
        from repro.data import (TextArtifacts, WorldConfig, generate_world,
                                make_dblp_full)
        from tests.conftest import tiny_config

        world = generate_world(tiny_config())
        dataset = make_dblp_full(world=world,
                                 text=TextArtifacts.fit(world, dim=16))
    model = CATEHGN(_tiny_model_config()).fit(dataset)
    preds = model.predict(dataset)[dataset.test_idx]
    truth = dataset.labels[dataset.test_idx]
    return mae(truth, preds), rmse(truth, preds)


def test_golden_tiny_headline(tiny_dataset):
    got_mae, got_rmse = _tiny_metrics(tiny_dataset)
    assert got_mae == pytest.approx(GOLDEN_TINY_MAE, abs=TOL)
    assert got_rmse == pytest.approx(GOLDEN_TINY_RMSE, abs=TOL)
    # Absolute quality floor: golden drift aside, the model must beat a
    # degenerate predictor by a wide margin on this world.
    truth = tiny_dataset.labels[tiny_dataset.test_idx]
    baseline_rmse = float(np.sqrt(np.mean((truth - truth.mean()) ** 2)))
    assert got_rmse < baseline_rmse


def test_golden_repair_validation_neutral(tiny_dataset):
    """``fit(..., validate="repair")`` on clean data is trajectory-neutral.

    The contract layer returns a clean graph by identity (DESIGN §13),
    so switching validation on must reproduce the frozen golden metrics
    bit-for-bit-within-TOL and record zero quarantine events.
    """
    model = CATEHGN(_tiny_model_config()).fit(tiny_dataset,
                                              validate="repair")
    preds = model.predict(tiny_dataset)[tiny_dataset.test_idx]
    truth = tiny_dataset.labels[tiny_dataset.test_idx]
    assert mae(truth, preds) == pytest.approx(GOLDEN_TINY_MAE, abs=TOL)
    assert rmse(truth, preds) == pytest.approx(GOLDEN_TINY_RMSE, abs=TOL)
    assert not [e for e in model.history.events
                if e.get("type") == "quarantine"]


def test_golden_minibatch_parity(tiny_dataset):
    """Converged neighbor-sampled training matches the full-batch golden.

    Two contracts in one: (a) the sampled trajectory itself is seeded
    and bit-deterministic, so its metrics are pinned exactly like the
    full-batch goldens; (b) the sampled optimum must sit within
    ``MINIBATCH_PARITY_TOL`` of the full-batch optimum — minibatching is
    an execution strategy, not a different model.
    """
    from repro.data import MinibatchSampler

    sampler = MinibatchSampler(batch_size=64, fanouts=8, seed=0)
    model = CATEHGN(_tiny_model_config()).fit(tiny_dataset, sampler=sampler)
    preds = model.predict(tiny_dataset)[tiny_dataset.test_idx]
    truth = tiny_dataset.labels[tiny_dataset.test_idx]
    got_mae, got_rmse = mae(truth, preds), rmse(truth, preds)
    assert got_mae == pytest.approx(GOLDEN_TINY_MINI_MAE, abs=TOL)
    assert got_rmse == pytest.approx(GOLDEN_TINY_MINI_RMSE, abs=TOL)
    assert abs(got_mae - GOLDEN_TINY_MAE) < MINIBATCH_PARITY_TOL
    assert abs(got_rmse - GOLDEN_TINY_RMSE) < MINIBATCH_PARITY_TOL


@pytest.mark.slow
def test_golden_bench_table2_headline():
    """Table-II headline at BENCH_WORLD scale (minutes; run via
    ``pytest -m slow tests/test_golden_metrics.py``)."""
    from benchmarks.common import bench_config, bench_datasets

    dataset = bench_datasets()["full"]
    model = CATEHGN(bench_config()).fit(dataset)
    preds = model.predict(dataset)[dataset.test_idx]
    truth = dataset.labels[dataset.test_idx]
    assert mae(truth, preds) == pytest.approx(GOLDEN_BENCH_MAE, abs=TOL)
    assert rmse(truth, preds) == pytest.approx(GOLDEN_BENCH_RMSE, abs=TOL)
