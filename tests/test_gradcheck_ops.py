"""Finite-difference gradcheck sweep over every differentiable Tensor op.

This file is the tier-1 guardrail for the autodiff engine: any future
optimisation of :mod:`repro.tensor` (vectorized backward closures, a new
backend, fused kernels) must keep every op's analytic gradient within
``1e-5`` relative error of two-sided finite differences.

Test data is sampled bounded away from kinks (|x| > 0.1 for relu/abs,
clip bounds, division denominators) so central differences are valid.
"""

import numpy as np
import pytest

from repro.analysis import check_gradients
from repro.hetnet.structure import EdgeStructure
from repro.nn import bce_with_logits, jsd_mi_estimate, kl_divergence, l1_loss, mse_loss
from repro.tensor import (
    Tensor,
    circular_convolution,
    circular_correlation,
    circular_correlation_row,
    concatenate,
    dropout,
    gather,
    gather_matmul,
    log_softmax,
    masked_softmax_combine,
    segment_mean,
    segment_softmax,
    segment_softmax_fused,
    segment_sum,
    segment_weighted_sum,
    softmax,
    stack,
    where,
)

TOL = 1e-5
RNG = np.random.default_rng(1234)


def smooth(shape, low=0.2, high=1.5, signed=True):
    """Random values with |x| in [low, high]: away from every kink."""
    mag = RNG.uniform(low, high, size=shape)
    if signed:
        mag *= np.where(RNG.random(shape) < 0.5, -1.0, 1.0)
    return mag


def run(fn, *arrays, names=None):
    tensors = [Tensor(np.asarray(a, dtype=np.float64)) for a in arrays]
    result = check_gradients(fn, tensors, names=names)
    assert result.passed
    assert result.max_rel_error < TOL
    return result


# ----------------------------------------------------------------------
# Binary arithmetic in all ndim/broadcast combinations
# ----------------------------------------------------------------------
BINARY_SHAPES = [
    ((), ()),
    ((3,), (3,)),
    ((3,), ()),
    ((2, 3), (2, 3)),
    ((2, 3), (3,)),
    ((2, 1), (1, 3)),
    ((4, 2, 3), (3,)),
    ((4, 2, 3), (2, 3)),
    ((4, 1, 3), (1, 2, 1)),
]

BINARY_OPS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div": lambda a, b: a / b,
}


@pytest.mark.parametrize("opname", sorted(BINARY_OPS))
@pytest.mark.parametrize("sa,sb", BINARY_SHAPES)
def test_binary_ops(opname, sa, sb):
    op = BINARY_OPS[opname]
    a = smooth(sa)
    b = smooth(sb)  # |b| >= 0.2 keeps division well-conditioned
    run(op, a, b, names=[f"{opname}_a", f"{opname}_b"])


def test_reflected_scalar_operands():
    x = smooth((2, 3))
    run(lambda t: 2.5 + t, x)
    run(lambda t: 2.5 - t, x)
    run(lambda t: -1.5 * t, x)
    run(lambda t: 2.0 / t, x)
    run(lambda t: -t, x)


@pytest.mark.parametrize("exponent", [2.0, 3.0, -1.0, 0.5, 1.7])
def test_pow(exponent):
    x = smooth((2, 4), signed=False)  # positive: fractional exponents
    run(lambda t: t**exponent, x)


# ----------------------------------------------------------------------
# matmul in all ndim combinations
# ----------------------------------------------------------------------
MATMUL_SHAPES = [
    ((4,), (4,)),          # vec · vec
    ((4,), (4, 3)),        # vec @ mat
    ((2, 4), (4,)),        # mat @ vec
    ((2, 4), (4, 3)),      # mat @ mat
    ((5, 2, 4), (5, 4, 3)),  # batched
    ((5, 2, 4), (4, 3)),     # broadcast rhs
]


@pytest.mark.parametrize("sa,sb", MATMUL_SHAPES)
def test_matmul(sa, sb):
    run(lambda a, b: a @ b, smooth(sa), smooth(sb))


# ----------------------------------------------------------------------
# Shape ops and indexing
# ----------------------------------------------------------------------
def test_reshape_flatten_transpose():
    x = smooth((2, 3, 4))
    run(lambda t: t.reshape(6, 4), x)
    run(lambda t: t.reshape(-1), x)
    run(lambda t: t.flatten(), x)
    run(lambda t: t.transpose(), x)
    run(lambda t: t.transpose(2, 0, 1), x)
    run(lambda t: t.T, smooth((3, 5)))


GETITEM_KEYS = [
    1,
    slice(0, 2),
    (slice(None), 2),
    np.array([0, 2, 0, 1]),            # fancy with repeats
    (np.array([0, 1, 2]), np.array([1, 0, 3])),  # coordinate pairs
    np.array([True, False, True]),     # boolean mask
]


@pytest.mark.parametrize("key", GETITEM_KEYS, ids=[str(i) for i in range(len(GETITEM_KEYS))])
def test_getitem(key):
    x = smooth((3, 4))
    run(lambda t: t[key], x)


# ----------------------------------------------------------------------
# Reductions, including tuple axes
# ----------------------------------------------------------------------
REDUCE_AXES = [None, 0, 1, 2, -1, (0, 2), (1, 2)]


@pytest.mark.parametrize("axis", REDUCE_AXES, ids=[str(a) for a in REDUCE_AXES])
@pytest.mark.parametrize("keepdims", [False, True])
def test_sum(axis, keepdims):
    run(lambda t: t.sum(axis=axis, keepdims=keepdims), smooth((2, 3, 4)))


@pytest.mark.parametrize("axis", REDUCE_AXES, ids=[str(a) for a in REDUCE_AXES])
@pytest.mark.parametrize("keepdims", [False, True])
def test_mean(axis, keepdims):
    run(lambda t: t.mean(axis=axis, keepdims=keepdims), smooth((2, 3, 4)))


@pytest.mark.parametrize("axis", [None, 0, 1], ids=["None", "0", "1"])
@pytest.mark.parametrize("keepdims", [False, True])
def test_max(axis, keepdims):
    # Tie-free data: a random permutation of well-separated values.
    vals = np.linspace(-1.0, 1.0, 12) + 0.01
    x = RNG.permutation(vals).reshape(3, 4)
    run(lambda t: t.max(axis=axis, keepdims=keepdims), x)


# ----------------------------------------------------------------------
# Elementwise nonlinearities
# ----------------------------------------------------------------------
UNARY_OPS = {
    "exp": (lambda t: t.exp(), dict()),
    "log": (lambda t: t.log(), dict(signed=False)),
    "sqrt": (lambda t: t.sqrt(), dict(signed=False)),
    "abs": (lambda t: t.abs(), dict()),
    "relu": (lambda t: t.relu(), dict()),
    "leaky_relu": (lambda t: t.leaky_relu(0.2), dict()),
    "sigmoid": (lambda t: t.sigmoid(), dict()),
    "tanh": (lambda t: t.tanh(), dict()),
    "softplus": (lambda t: t.softplus(), dict()),
}


@pytest.mark.parametrize("name", sorted(UNARY_OPS))
def test_unary_nonlinearities(name):
    fn, kwargs = UNARY_OPS[name]
    run(fn, smooth((3, 4), **kwargs), names=[name])


def test_clip():
    # Data bounded away from the clip edges on both sides.
    x = np.concatenate([smooth((6,), 0.2, 0.4), smooth((6,), 0.8, 1.4)])
    run(lambda t: t.clip(-0.6, 0.6), x)


# ----------------------------------------------------------------------
# Functional ops (repro.tensor.ops)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("axis", [0, 1, -1])
def test_concatenate(axis):
    run(
        lambda a, b, c: concatenate([a, b, c], axis=axis),
        smooth((2, 3)), smooth((2, 3)), smooth((2, 3)),
    )


@pytest.mark.parametrize("axis", [0, 1])
def test_stack(axis):
    run(lambda a, b: stack([a, b], axis=axis), smooth((2, 3)), smooth((2, 3)))


def test_gather_with_repeats():
    idx = np.array([0, 3, 1, 0, 3])
    run(lambda t: gather(t, idx), smooth((4, 3)))


SEGMENTS = np.array([0, 0, 2, 1, 2, 2])


def test_segment_sum():
    run(lambda t: segment_sum(t, SEGMENTS, 4), smooth((6, 3)))


def test_segment_mean():
    run(lambda t: segment_mean(t, SEGMENTS, 4), smooth((6, 3)))


@pytest.mark.parametrize("shape", [(6,), (6, 2)], ids=["flat", "heads"])
def test_segment_softmax(shape):
    run(lambda t: segment_softmax(t, SEGMENTS, 3), smooth(shape))


@pytest.mark.parametrize("axis", [-1, 0])
def test_softmax(axis):
    run(lambda t: softmax(t, axis=axis), smooth((3, 4)))


@pytest.mark.parametrize("axis", [-1, 0])
def test_log_softmax(axis):
    run(lambda t: log_softmax(t, axis=axis), smooth((3, 4)))


@pytest.mark.parametrize("op", [circular_correlation, circular_convolution],
                         ids=["corr", "conv"])
@pytest.mark.parametrize("sa,sb", [((5,), (5,)), ((3, 6), (3, 6)), ((1, 4), (3, 4))])
def test_circular_composition(op, sa, sb):
    run(lambda a, b: op(a, b), smooth(sa), smooth(sb))


# ----------------------------------------------------------------------
# Fused kernels (DESIGN §10): every fused op, every index layout —
# including the degenerate shapes (empty segments, a single edge) that
# break the naive reduceat fast path.
# ----------------------------------------------------------------------

# Segment layouts: "gaps" leaves segments 1 and 3 empty, "single" is the
# one-edge graph, "empty" has no edges at all.
SEGMENT_CASES = {
    "dense": (np.array([0, 0, 2, 1, 2, 2]), 4),
    "gaps": (np.array([0, 0, 4, 2, 4]), 6),
    "single": (np.array([1]), 3),
    "empty": (np.array([], dtype=np.intp), 3),
}


def _sorter(segment_ids, num_segments):
    src = np.zeros(len(segment_ids), dtype=np.intp)
    return EdgeStructure(src, segment_ids, num_segments)


@pytest.mark.parametrize("case", sorted(SEGMENT_CASES))
@pytest.mark.parametrize("use_sorter", [False, True], ids=["scatter", "sorted"])
def test_gather_matmul_fused(case, use_sorter):
    seg, num = SEGMENT_CASES[case]
    sorter = _sorter(seg, num) if use_sorter else None
    w = smooth((3, 2))
    bias = smooth((2,))
    table = smooth((num, 3))
    run(lambda t, wt: gather_matmul(t, seg, wt, sorter=sorter), table, w)
    run(lambda t, wt, bt: gather_matmul(t, seg, wt, bias=bt, sorter=sorter),
        table, w, bias)


@pytest.mark.parametrize("case", sorted(SEGMENT_CASES))
@pytest.mark.parametrize("use_sorter", [False, True], ids=["scatter", "sorted"])
def test_segment_weighted_sum_fused(case, use_sorter):
    seg, num = SEGMENT_CASES[case]
    sorter = _sorter(seg, num) if use_sorter else None
    run(lambda v, w: segment_weighted_sum(v, w, seg, num, sorter=sorter),
        smooth((len(seg), 3)), smooth((len(seg),)))


@pytest.mark.parametrize("case", ["dense", "gaps", "single"])
@pytest.mark.parametrize("shape_tail", [(), (2,)], ids=["flat", "heads"])
@pytest.mark.parametrize("use_sorter", [False, True], ids=["scatter", "sorted"])
def test_segment_softmax_fused_op(case, shape_tail, use_sorter):
    seg, num = SEGMENT_CASES[case]
    sorter = _sorter(seg, num) if use_sorter else None
    run(lambda s: segment_softmax_fused(s, seg, num, sorter=sorter),
        smooth((len(seg),) + shape_tail))


def test_segment_softmax_fused_matches_composed():
    seg, num = SEGMENT_CASES["gaps"]
    x = smooth((len(seg), 2))
    fused = segment_softmax_fused(Tensor(x), seg, num)
    composed = segment_softmax(Tensor(x), seg, num)
    np.testing.assert_allclose(fused.data, composed.data, atol=1e-12)


@pytest.mark.parametrize("num_rows", [5, 1], ids=["rows", "single_row"])
def test_masked_softmax_combine_fused(num_rows):
    num_types = 3
    mask = RNG.random((num_rows, num_types)) < 0.5
    mask[:, -1] = True  # the always-present self-loop column
    run(
        lambda s, a0, a1, a2: masked_softmax_combine(s, [a0, a1, a2], mask),
        smooth((num_rows, num_types)),
        smooth((num_rows, 4)), smooth((num_rows, 4)), smooth((num_rows, 4)),
    )


@pytest.mark.parametrize("index_case", ["none", "dense", "single", "empty"])
@pytest.mark.parametrize("use_sorter", [False, True], ids=["scatter", "sorted"])
def test_circular_correlation_row_fused(index_case, use_sorter):
    d, num = 6, 4
    indices = {
        "none": None,
        "dense": np.array([0, 3, 1, 0, 3], dtype=np.intp),
        "single": np.array([2], dtype=np.intp),
        "empty": np.array([], dtype=np.intp),
    }
    index = indices[index_case]
    sorter = (None if index is None or not use_sorter
              else EdgeStructure(np.zeros(len(index), dtype=np.intp),
                                 index, num))
    run(
        lambda t, r: circular_correlation_row(t, r, index=index,
                                              sorter=sorter),
        smooth((num, d)), smooth((1, d)),
    )


def test_circular_correlation_row_matches_fft():
    d = 8
    table = smooth((5, d))
    row = smooth((1, d))
    idx = np.array([0, 4, 2, 2, 1], dtype=np.intp)
    fused = circular_correlation_row(Tensor(table), Tensor(row), index=idx)
    legacy = circular_correlation(Tensor(table[idx]), Tensor(row))
    np.testing.assert_allclose(fused.data, legacy.data, atol=1e-12)


@pytest.mark.parametrize("use_sorter", [False, True], ids=["scatter", "sorted"])
def test_gather_with_sorter_backward(use_sorter):
    idx = np.array([0, 3, 1, 0, 3], dtype=np.intp)
    sorter = (EdgeStructure(np.zeros(len(idx), dtype=np.intp), idx, 4)
              if use_sorter else None)
    run(lambda t: gather(t, idx, sorter=sorter), smooth((4, 3)))


@pytest.mark.parametrize("case", sorted(SEGMENT_CASES))
def test_segment_reductions_with_sorter(case):
    seg, num = SEGMENT_CASES[case]
    sorter = _sorter(seg, num)
    run(lambda t: segment_sum(t, seg, num, sorter=sorter),
        smooth((len(seg), 3)))
    run(lambda t: segment_mean(t, seg, num, counts=sorter.counts,
                               sorter=sorter),
        smooth((len(seg), 3)))


def test_where():
    cond = RNG.random((3, 4)) < 0.5
    run(lambda a, b: where(cond, a, b), smooth((3, 4)), smooth((3, 4)))


def test_dropout_eval_is_identity_gradient():
    rng = np.random.default_rng(0)
    run(lambda t: dropout(t, 0.5, rng, training=False), smooth((3, 4)))


# ----------------------------------------------------------------------
# Losses
# ----------------------------------------------------------------------
def test_losses():
    pred = smooth((7,))
    target = smooth((7,)) + 2.5  # |pred - target| > 0 for l1's kink
    run(lambda p: mse_loss(p, target), pred)
    run(lambda p: mse_loss(p, target, reduction="sum"), pred)
    run(lambda p: l1_loss(p, target), pred)
    labels = (RNG.random(7) < 0.5).astype(np.float64)
    run(lambda p: bce_with_logits(p, labels), pred)
    p_dist = RNG.dirichlet(np.ones(4), size=3)
    q_dist = RNG.dirichlet(np.ones(4), size=3)
    run(lambda p, q: kl_divergence(p, q), p_dist, q_dist)
    run(lambda a, b: jsd_mi_estimate(a, b).sum(), smooth((5,)), smooth((5,)))


def test_composite_expression():
    """A deep mixed tape: matmul -> nonlinearity -> reduction chain."""
    w = smooth((4, 3))
    x = smooth((5, 4))
    b = smooth((3,))

    def fn(wt, xt, bt):
        h = (xt @ wt + bt).tanh()
        att = softmax(h, axis=-1)
        return (att * h).sigmoid().mean() + h.abs().sum() * 0.01

    run(fn, w, x, b, names=["w", "x", "b"])


def test_failure_is_reported():
    """A deliberately wrong gradient must be caught with a useful report."""
    from repro.analysis import GradcheckError

    def bad_square(t):
        out = t.data**2

        def backward(grad):
            t._accumulate(grad * 3.0 * t.data)  # wrong: says d/dx x^2 = 3x

        return Tensor._make(out, (t,), backward)

    x = Tensor(smooth((3,)))
    with pytest.raises(GradcheckError) as excinfo:
        check_gradients(bad_square, [x])
    assert "rel=" in str(excinfo.value)
