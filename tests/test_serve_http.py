"""HTTP service smoke test: boot on an ephemeral port, hit every endpoint."""

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core import CATEHGN
from repro.eval.runner import default_cate_config
from repro.serve import InferenceEngine, make_server


@pytest.fixture(scope="module")
def served(tiny_dataset, tmp_path_factory):
    config = default_cate_config(dim=16, seed=0, outer_iters=1, mini_iters=1)
    est = CATEHGN(config).fit(tiny_dataset)
    path = est.save_checkpoint(tmp_path_factory.mktemp("ckpt") / "model")
    engine = InferenceEngine.from_checkpoint(path)
    server = make_server(engine, port=0)  # ephemeral port
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{server.server_address[1]}"
    yield est, engine, base
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def _get(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, json.loads(response.read())


def _post(url, body):
    request = urllib.request.Request(
        url, data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, json.loads(response.read())


class TestEndpoints:
    def test_healthz(self, served):
        _est, engine, base = served
        status, body = _get(base + "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["num_papers"] == engine.num_papers

    def test_predict_get(self, served):
        est, _engine, base = served
        status, body = _get(base + "/predict?ids=0,1,2")
        assert status == 200
        assert body["predictions"] == [float(p) for p in est.predict()[:3]]

    def test_predict_post(self, served):
        est, _engine, base = served
        status, body = _post(base + "/predict", {"paper_ids": [5, 9]})
        assert status == 200
        reference = est.predict()
        assert body["predictions"] == [reference[5], reference[9]]

    def test_predict_cold_start(self, served):
        _est, _engine, base = served
        status, body = _post(base + "/predict",
                             {"title": "mining heterogeneous networks"})
        assert status == 200
        assert body["cold_start"] is True
        assert body["prediction"] >= 0.0

    def test_rank(self, served):
        est, _engine, base = served
        status, body = _post(base + "/rank", {"node_type": "author", "k": 3})
        assert status == 200
        assert len(body["ranking"]) == 3
        best = int(np.argmax(est.node_impacts("author")))
        assert body["ranking"][0]["id"] == best

    def test_metrics_counts_and_latency(self, served):
        _est, _engine, base = served
        _get(base + "/predict?ids=1")
        _get(base + "/predict?ids=1")  # second hit -> cache hit rate > 0
        status, body = _get(base + "/metrics")
        assert status == 200
        assert body["total_requests"] >= 2
        predict = body["endpoints"]["/predict"]
        assert predict["requests"] >= 2
        assert predict["latency_ms_p50"] >= 0.0
        assert predict["latency_ms_p99"] >= predict["latency_ms_p50"]
        assert 0.0 <= body["cache"]["hit_rate"] <= 1.0
        assert body["cache"]["hits"] >= 1


class TestErrorHandling:
    def test_unknown_endpoint_404(self, served):
        _est, _engine, base = served
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(base + "/nope")
        assert err.value.code == 404

    def test_bad_json_400(self, served):
        _est, _engine, base = served
        request = urllib.request.Request(
            base + "/predict", data=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=10)
        assert err.value.code == 400

    def test_out_of_range_ids_400(self, served):
        _est, _engine, base = served
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(base + "/predict", {"paper_ids": [10 ** 9]})
        assert err.value.code == 400

    def test_missing_body_400(self, served):
        _est, _engine, base = served
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(base + "/predict", {})
        assert err.value.code == 400

    def test_bad_rank_type_400(self, served):
        _est, _engine, base = served
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(base + "/rank", {"node_type": "galaxy"})
        assert err.value.code == 400

    def test_errors_counted_in_metrics(self, served):
        _est, _engine, base = served
        try:
            _get(base + "/definitely-missing")
        except urllib.error.HTTPError:
            pass
        _status, body = _get(base + "/metrics")
        assert body["total_errors"] >= 1


def test_cli_parser():
    from repro.serve.__main__ import build_parser

    args = build_parser().parse_args(["model.npz", "--port", "9000",
                                      "--cache-size", "16"])
    assert args.checkpoint == "model.npz"
    assert args.port == 9000 and args.cache_size == 16
