"""Property-based tests on heterogeneous-graph invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hetnet import AUTHOR, PAPER, TERM, VENUE, sample_neighborhood

from .test_hetnet import small_graph


@settings(max_examples=25, deadline=None)
@given(
    papers=st.lists(st.integers(min_value=0, max_value=3), min_size=1,
                    max_size=4),
    authors=st.lists(st.integers(min_value=0, max_value=2), min_size=0,
                     max_size=3),
)
def test_subgraph_never_invents_edges(papers, authors):
    graph = small_graph()
    sub, selected = graph.subgraph({
        PAPER: np.array(papers),
        AUTHOR: np.array(authors, dtype=np.intp),
        VENUE: np.arange(2),
        TERM: np.arange(2),
    })
    sub.validate()
    for key, edge in sub.edges.items():
        src_type, _, dst_type = key
        original = graph.edges[key]
        original_pairs = set(zip(original.src.tolist(),
                                 original.dst.tolist()))
        for s, d in zip(edge.src, edge.dst):
            orig = (int(selected[src_type][s]), int(selected[dst_type][d]))
            assert orig in original_pairs


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=1000),
    hops=st.integers(min_value=1, max_value=3),
    fanout=st.integers(min_value=1, max_value=5),
)
def test_sample_neighborhood_invariants(seed, hops, fanout):
    graph = small_graph()
    rng = np.random.default_rng(seed)
    seeds = np.array([2, 3])
    sub, selected, seed_local = sample_neighborhood(graph, seeds, hops=hops,
                                                    fanout=fanout, rng=rng)
    sub.validate()
    # Seeds always survive and map back correctly.
    assert set(seeds.tolist()) <= set(selected[PAPER].tolist())
    assert np.array_equal(selected[PAPER][seed_local], seeds)
    # Sampling never selects more nodes than exist.
    for t, ids in selected.items():
        assert len(ids) <= graph.num_nodes[t]
        assert len(np.unique(ids)) == len(ids)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1000))
def test_sampled_subgraph_is_subset_of_full_expansion(seed):
    graph = small_graph()
    rng = np.random.default_rng(seed)
    _sub_s, sel_small, _ = sample_neighborhood(graph, np.array([2]), hops=2,
                                               fanout=1, rng=rng)
    _sub_f, sel_full, _ = sample_neighborhood(graph, np.array([2]), hops=2,
                                              fanout=100,
                                              rng=np.random.default_rng(0))
    for t in sel_small:
        assert set(sel_small[t].tolist()) <= set(sel_full[t].tolist())
