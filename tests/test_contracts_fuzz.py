"""Seeded property-based fuzz of the contract layer (DESIGN §13).

Six mutation operators — drop-node, dangle-edge, future-cite,
NaN-feature, duplicate-edge, type-swap — are applied at
hypothesis-chosen positions of a clean generator graph.  Two properties
must hold for *every* mutation:

1. **detection** — the ``strict`` policy raises ``ContractViolation``
   and the report contains the mutation's contract code;
2. **round-trip** — the ``repair`` policy returns a graph whose
   re-check is clean (zero error findings) and that still passes the
   construction-time ``HeteroGraph.validate``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.contracts import (
    ContractViolation,
    check_graph,
    validate_graph,
)
from repro.data import TextArtifacts, generate_world, make_dblp_full
from repro.hetnet.graph import EdgeArray, HeteroGraph
from repro.hetnet.schema import PAPER

from .conftest import tiny_config

CITES = (PAPER, "cites", PAPER)

# One clean base graph for the whole module; every fuzz case clones it.
_WORLD = generate_world(tiny_config(num_papers=80, num_authors=30))
_BASE = make_dblp_full(world=_WORLD,
                       text=TextArtifacts.fit(_WORLD, dim=8)).graph


def _clone(graph: HeteroGraph) -> HeteroGraph:
    """Deep-enough copy: fuzz mutations must never leak across cases."""
    g = HeteroGraph(graph.schema)
    g.num_nodes = dict(graph.num_nodes)
    g.node_names = {t: list(v) for t, v in graph.node_names.items()}
    g.node_features = {t: f.copy() for t, f in graph.node_features.items()}
    g.node_attrs = {t: {k: v.copy() for k, v in attrs.items()}
                    for t, attrs in graph.node_attrs.items()}
    g.edges = {k: EdgeArray(e.src.copy(), e.dst.copy(), e.weight.copy())
               for k, e in graph.edges.items()}
    g._topology_version += 1
    return g


# ----------------------------------------------------------------------
# Mutation operators: (graph, rng) -> expected contract code, or None if
# the mutation was infeasible at the drawn position (case is skipped).
# ----------------------------------------------------------------------
def _mut_drop_node(graph: HeteroGraph, rng: np.random.Generator):
    """Shrink a node count without trimming rows: C007 shape mismatch."""
    t = str(rng.choice(list(graph.schema.node_types)))
    if graph.num_nodes[t] < 2:
        return None
    graph.num_nodes[t] -= 1
    graph._topology_version += 1
    return "C007"


def _mut_dangle_edge(graph: HeteroGraph, rng: np.random.Generator):
    """Point one endpoint past its node count: C002 dangling."""
    keys = [k for k, e in graph.edges.items() if e.num_edges]
    key = keys[rng.integers(len(keys))]
    edge = graph.edges[key]
    i = int(rng.integers(edge.num_edges))
    side = "src" if rng.integers(2) else "dst"
    node_type = key[0] if side == "src" else key[2]
    getattr(edge, side)[i] = graph.num_nodes[node_type] + int(
        rng.integers(1, 10))
    graph._topology_version += 1
    return "C002"


def _mut_future_cite(graph: HeteroGraph, rng: np.random.Generator):
    """Append a citation whose cited year is later: C004 temporal."""
    years = np.asarray(graph.node_attrs[PAPER]["year"])
    order = np.argsort(years, kind="stable")
    lo, hi = int(order[0]), int(order[-1])
    if years[hi] <= years[lo]:
        return None  # all papers share a year; no future edge possible
    edge = graph.edges[CITES]
    graph.edges[CITES] = EdgeArray(
        np.append(edge.src, hi), np.append(edge.dst, lo),
        np.append(edge.weight, 1.0))
    graph._topology_version += 1
    return "C004"


def _mut_nan_feature(graph: HeteroGraph, rng: np.random.Generator):
    """Poison one feature entry with NaN/Inf: C005."""
    t = str(rng.choice(list(graph.node_features)))
    feats = graph.node_features[t]
    if feats.size == 0:
        return None
    row = int(rng.integers(feats.shape[0]))
    col = int(rng.integers(feats.shape[1]))
    feats[row, col] = np.nan if rng.integers(2) else np.inf
    return "C005"


def _mut_dup_edge(graph: HeteroGraph, rng: np.random.Generator):
    """Append a copy of an existing edge: C003 duplicate pair."""
    keys = [k for k, e in graph.edges.items() if e.num_edges]
    key = keys[rng.integers(len(keys))]
    edge = graph.edges[key]
    i = int(rng.integers(edge.num_edges))
    graph.edges[key] = EdgeArray(
        np.append(edge.src, edge.src[i]),
        np.append(edge.dst, edge.dst[i]),
        np.append(edge.weight, edge.weight[i]))
    graph._topology_version += 1
    return "C003"


def _mut_type_swap(graph: HeteroGraph, rng: np.random.Generator):
    """Re-key an edge type with swapped endpoint types: C001 schema."""
    candidates = [k for k in graph.edges
                  if not graph.schema.has_edge_type((k[2], k[1], k[0]))]
    if not candidates:
        return None
    key = candidates[rng.integers(len(candidates))]
    graph.edges[(key[2], key[1], key[0])] = graph.edges.pop(key)
    graph._topology_version += 1
    return "C001"


MUTATIONS = {
    "drop_node": _mut_drop_node,
    "dangle_edge": _mut_dangle_edge,
    "future_cite": _mut_future_cite,
    "nan_feature": _mut_nan_feature,
    "dup_edge": _mut_dup_edge,
    "type_swap": _mut_type_swap,
}


# ----------------------------------------------------------------------
# Properties
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(MUTATIONS))
@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_mutation_detected_and_round_trips(name, seed):
    rng = np.random.default_rng(seed)
    graph = _clone(_BASE)
    code = MUTATIONS[name](graph, rng)
    if code is None:
        return  # infeasible at this drawn position

    # Property 1: strict detects the mutation with the right code.
    with pytest.raises(ContractViolation) as excinfo:
        validate_graph(graph, policy="strict")
    assert code in excinfo.value.report.codes(), (
        f"{name}: expected {code} in {excinfo.value.report.codes()}")

    # Property 2: repair round-trips to a clean, constructible graph.
    repaired, report = validate_graph(graph, policy="repair")
    assert report.has_errors  # it did find (and fix) something
    recheck = check_graph(repaired)
    assert not recheck.has_errors, recheck.render()
    repaired.validate()  # construction-time invariants hold too


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000),
       picks=st.lists(st.sampled_from(sorted(MUTATIONS)), min_size=2,
                      max_size=4))
def test_stacked_mutations_round_trip(seed, picks):
    """Several simultaneous corruptions still repair to a clean graph.

    Stacked mutations can *mask* each other's codes — e.g. drop_node
    shrinks ``num_nodes`` so a subsequently appended future-cite edge
    is reported as C002 dangling instead of C004 — so the detection
    property here is "strict raises and reports at least one of the
    injected classes", not full code coverage (that is the
    single-mutation test's job).  The round-trip property stays exact.
    """
    rng = np.random.default_rng(seed)
    graph = _clone(_BASE)
    applied = [MUTATIONS[name](graph, rng) for name in picks]
    codes = {c for c in applied if c is not None}
    if not codes:
        return

    with pytest.raises(ContractViolation) as excinfo:
        validate_graph(graph, policy="strict")
    assert codes & set(excinfo.value.report.codes())

    repaired, _ = validate_graph(graph, policy="repair")
    recheck = check_graph(repaired)
    assert not recheck.has_errors, recheck.render()
    repaired.validate()


def test_clean_graph_is_identity():
    """No findings on clean data — and repair returns the same object."""
    graph = _clone(_BASE)
    report = check_graph(graph)
    assert not report.has_errors
    out, _ = validate_graph(graph, policy="repair")
    assert out is graph
