"""Integration tests for the self-healing fleet (DESIGN §17).

Serving side: a real 2-replica fleet — subprocess replicas behind the
consistent-hash router — answers exactly like the inline engine, pins
request affinity (the router's raison d'être for cache locality),
survives a replica SIGKILL under concurrent load without surfacing a
single non-200, and rolls reloads through the shadow-validation gate
(bad candidates leave every replica on the old checkpoint).

Elastic side: the hash shard partition is disjoint and covering, a
fixed (seed, K) replays a bitwise-identical trajectory, and a worker
killed mid-run is replaced without perturbing that trajectory.
"""

import http.client
import json
import shutil
import threading
import time

import numpy as np
import pytest

from repro.core import CATEHGN
from repro.data.sampling import shard_items
from repro.eval.runner import default_cate_config
from repro.fleet import ElasticTrainer, ServingFleet, http_json
from repro.fleet.client import predict_scripts, run_load
from repro.resilience import faults
from repro.serve import InferenceEngine, save_catehgn


@pytest.fixture(scope="module")
def fitted(tiny_dataset):
    config = default_cate_config(dim=16, seed=0, outer_iters=2, mini_iters=2)
    return CATEHGN(config).fit(tiny_dataset)


@pytest.fixture(scope="module")
def checkpoint_path(fitted, tmp_path_factory):
    root = tmp_path_factory.mktemp("fleet_ckpt")
    return save_catehgn(fitted, root / "model.npz")


@pytest.fixture(scope="module")
def fleet(checkpoint_path):
    f = ServingFleet(str(checkpoint_path), 2, probe_interval=0.2)
    host, port = f.start()
    try:
        yield f, host, port
    finally:
        f.shutdown()


def _request_raw(host, port, body):
    """One POST /predict returning (status, headers, parsed body)."""
    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        conn.request("POST", "/predict", json.dumps(body),
                     {"Content-Type": "application/json"})
        resp = conn.getresponse()
        payload = json.loads(resp.read() or b"{}")
        return resp.status, dict(resp.getheaders()), payload
    finally:
        conn.close()


# ---------------------------------------------------------------------------
# Serving fleet
# ---------------------------------------------------------------------------

class TestServingFleet:
    def test_parity_with_inline_engine(self, fleet, checkpoint_path):
        _, host, port = fleet
        engine = InferenceEngine.from_checkpoint(checkpoint_path)
        ids = list(range(0, int(engine.num_papers), 5))
        status, body = http_json(host, port, "POST", "/predict",
                                 {"paper_ids": ids})
        assert status == 200
        assert np.allclose(body["predictions"], engine.predict(ids),
                           rtol=0, atol=0)

    def test_affinity_and_replica_header(self, fleet):
        _, host, port = fleet
        body = {"paper_ids": [1, 2, 3]}
        owners = {_request_raw(host, port, body)[1]["X-Fleet-Replica"]
                  for _ in range(5)}
        # Consistent hashing: the identical request always lands on the
        # same replica (that is what makes per-replica caches useful).
        assert len(owners) == 1

        spread = {_request_raw(host, port,
                               {"paper_ids": [i]})[1]["X-Fleet-Replica"]
                  for i in range(40)}
        assert spread == {"replica-0", "replica-1"}

    def test_status_healthz_metrics(self, fleet):
        _, host, port = fleet
        status, snap = http_json(host, port, "GET", "/fleet/status")
        assert status == 200
        assert sorted(snap["ring"]) == ["replica-0", "replica-1"]
        assert all(r["alive"] for r in snap["replicas"].values())

        status, health = http_json(host, port, "GET", "/healthz")
        assert status == 200 and health["members"] == 2

        http_json(host, port, "POST", "/predict", {"paper_ids": [4]})
        status, metrics = http_json(host, port, "GET", "/metrics")
        assert status == 200
        assert set(metrics["replicas"]) == {"replica-0", "replica-1"}

    def test_unroutable_method_404(self, fleet):
        _, host, port = fleet
        status, _body = http_json(host, port, "GET", "/no-such-endpoint")
        assert status == 404


class TestSelfHealing:
    def test_replica_kill_under_load_zero_errors(self, checkpoint_path):
        f = ServingFleet(str(checkpoint_path), 2, probe_interval=0.2)
        host, port = f.start()
        try:
            scripts = predict_scripts(50, 4, 50, seed=5)
            holder = []
            load = threading.Thread(
                target=lambda: holder.append(run_load(host, port, scripts)))
            load.start()
            time.sleep(0.2)
            victim = f.supervisor.replica_names()[0]
            f.supervisor.kill_replica(victim)
            load.join(timeout=120)
            assert not load.is_alive()
            result = holder[0]
            assert result.failures == 0
            assert result.server_errors() == 0
            assert result.count(200) == result.total == 200

            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                _, snap = http_json(host, port, "GET", "/fleet/status")
                rep = snap["replicas"][victim]
                if rep["alive"] and rep["restarts"] >= 1 \
                        and victim in snap["ring"]:
                    break
                time.sleep(0.2)
            else:  # pragma: no cover
                pytest.fail(f"{victim} never restarted")
        finally:
            f.shutdown()


class TestRollingReload:
    def test_good_reload_swaps_every_replica(self, checkpoint_path,
                                             tmp_path):
        new_dir = tmp_path / "next"
        new_dir.mkdir()
        for name in ("model.npz", "model_graph.npz", "model_graph.json"):
            shutil.copy(checkpoint_path.parent / name, new_dir / name)
        f = ServingFleet(str(checkpoint_path), 2, probe_interval=0.2)
        host, port = f.start()
        try:
            status, before = http_json(host, port, "POST", "/predict",
                                       {"paper_ids": [7, 8]})
            assert status == 200
            status, report = http_json(
                host, port, "POST", "/admin/reload",
                {"path": str(new_dir / "model.npz")}, timeout=300)
            assert status == 200, report
            assert report["reloaded"] is True
            assert sorted(report["swapped"]) == ["replica-0", "replica-1"]
            status, after = http_json(host, port, "POST", "/predict",
                                      {"paper_ids": [7, 8]})
            assert status == 200
            assert after["predictions"] == before["predictions"]
        finally:
            f.shutdown()

    def test_bad_candidate_aborts_with_old_checkpoint_serving(
            self, checkpoint_path, tmp_path):
        junk = tmp_path / "junk.npz"
        np.savez(junk, a=np.zeros(3))
        f = ServingFleet(str(checkpoint_path), 2, probe_interval=0.2)
        host, port = f.start()
        try:
            status, before = http_json(host, port, "POST", "/predict",
                                       {"paper_ids": [1, 2]})
            status, report = http_json(host, port, "POST", "/admin/reload",
                                       {"path": str(junk)}, timeout=300)
            assert status == 409
            assert report["reloaded"] is False
            assert report.get("swapped") in ([], None, 0)
            status, after = http_json(host, port, "POST", "/predict",
                                      {"paper_ids": [1, 2]})
            assert status == 200
            assert after["predictions"] == before["predictions"]
        finally:
            f.shutdown()


# ---------------------------------------------------------------------------
# Elastic training
# ---------------------------------------------------------------------------

def _elastic_config():
    return default_cate_config(dim=8, seed=0, outer_iters=2, mini_iters=1)


class TestShardPartition:
    def test_disjoint_and_covering(self):
        items = np.arange(501, dtype=np.intp)
        for k in (1, 2, 3, 5):
            shards = [shard_items(items, k, s) for s in range(k)]
            assert sum(len(s) for s in shards) == len(items)
            assert np.array_equal(
                np.sort(np.concatenate(shards)), items)

    def test_order_independent(self):
        items = np.arange(200, dtype=np.intp)
        rng = np.random.default_rng(3)
        shuffled = rng.permutation(items)
        a = set(shard_items(items, 3, 1).tolist())
        b = set(shard_items(shuffled, 3, 1).tolist())
        assert a == b

    def test_single_shard_is_identity(self):
        items = np.arange(40, dtype=np.intp)
        assert np.array_equal(shard_items(items, 1, 0), items)

    def test_invalid_shard_rejected(self):
        items = np.arange(10, dtype=np.intp)
        with pytest.raises(ValueError):
            shard_items(items, 2, 2)
        with pytest.raises(ValueError):
            shard_items(items, 0, 0)


class TestElasticTraining:
    def test_fixed_seed_is_bitwise_reproducible(self, tiny_dataset):
        runs = [ElasticTrainer(_elastic_config(), num_workers=2,
                               steps=3).fit(tiny_dataset)
                for _ in range(2)]
        assert runs[0].fingerprint == runs[1].fingerprint
        assert runs[0].seed_hashes == runs[1].seed_hashes
        assert runs[0].losses == runs[1].losses
        assert set(runs[0].state) == set(runs[1].state)
        for key in runs[0].state:
            assert np.array_equal(runs[0].state[key], runs[1].state[key])

    def test_worker_kill_resumes_bitwise(self, tiny_dataset):
        reference = ElasticTrainer(_elastic_config(), num_workers=2,
                                   steps=3).fit(tiny_dataset)
        assert reference.deaths == []
        with faults.kill_worker(shard=0, step=1):
            survived = ElasticTrainer(_elastic_config(), num_workers=2,
                                      steps=3).fit(tiny_dataset)
        assert [(d["step"], d["shard"]) for d in survived.deaths] == [(1, 0)]
        assert survived.fingerprint == reference.fingerprint
        assert survived.seed_hashes == reference.seed_hashes
        for key in reference.state:
            assert np.array_equal(survived.state[key], reference.state[key])
