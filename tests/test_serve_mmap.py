"""Memory-mapped checkpoint loading: no-copy guarantee, parity, safety.

``mmap_mode="r"`` exists so N fleet replicas can share one page-cache
copy of the graph payload instead of materializing N private heaps.
These tests pin the contract from both ends: the arrays really are
read-only memmaps backed by the extraction cache (not silent copies —
``np.load`` *ignores* ``mmap_mode`` for zip containers, which is easy
to regress), a tracemalloc ceiling proves the Python heap never pays
for the payload, predictions are bitwise-identical to the regular
loader's, the sibling cache is reused across loads, and a corrupted
npz is rejected at extraction time (the mmap path skips the whole-file
digest check, so the zip CRC *is* the integrity story).
"""

import tracemalloc

import numpy as np
import pytest

from repro.core import CATEHGN
from repro.data import load_graph, save_graph
from repro.data.io import MMAP_CACHE_SUFFIX, mmap_npz
from repro.eval.runner import default_cate_config
from repro.serve import InferenceEngine, load_checkpoint, save_catehgn


@pytest.fixture(scope="module")
def checkpoint_path(tiny_dataset, tmp_path_factory):
    config = default_cate_config(dim=16, seed=0, outer_iters=2, mini_iters=2)
    est = CATEHGN(config).fit(tiny_dataset)
    root = tmp_path_factory.mktemp("mmap_ckpt")
    return save_catehgn(est, root / "model.npz")


class TestMmapNpz:
    def test_members_are_readonly_memmaps(self, tmp_path):
        path = tmp_path / "arrays.npz"
        np.savez(path, a=np.arange(12.0).reshape(3, 4),
                 b=np.array([1, 2, 3], dtype=np.int64))
        loaded = mmap_npz(path)
        assert set(loaded) == {"a", "b"}
        for name in ("a", "b"):
            assert isinstance(loaded[name], np.memmap)
            assert not loaded[name].flags.writeable
        assert np.array_equal(loaded["a"],
                              np.arange(12.0).reshape(3, 4))

    def test_cache_dir_reused_across_loads(self, tmp_path):
        path = tmp_path / "arrays.npz"
        np.savez(path, a=np.zeros(5))
        mmap_npz(path)
        cache = path.with_name(path.name + MMAP_CACHE_SUFFIX)
        assert cache.is_dir()
        stamp = {p.name: p.stat().st_mtime_ns for p in cache.iterdir()}
        mmap_npz(path)
        assert {p.name: p.stat().st_mtime_ns
                for p in cache.iterdir()} == stamp

    def test_rewritten_npz_invalidates_cache(self, tmp_path):
        path = tmp_path / "arrays.npz"
        np.savez(path, a=np.zeros(4))
        assert float(mmap_npz(path)["a"][0]) == 0.0
        np.savez(path, a=np.full(4, 7.0))
        assert float(mmap_npz(path)["a"][0]) == 7.0

    def test_corrupt_member_rejected(self, tmp_path):
        path = tmp_path / "arrays.npz"
        np.savez(path, payload=np.arange(4096.0))
        raw = bytearray(path.read_bytes())
        # Flip bytes in the middle of the stored member data; the zip
        # CRC check at extraction must catch it.
        mid = len(raw) // 2
        for i in range(mid, mid + 8):
            raw[i] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises((ValueError, OSError)):
            mmap_npz(path)


class TestMmapCheckpoint:
    def test_checkpoint_arrays_memmapped(self, checkpoint_path):
        ckpt = load_checkpoint(checkpoint_path, mmap_mode="r")
        assert any(isinstance(a, np.memmap) for a in ckpt.state.values())

    def test_graph_arrays_memmapped(self, tiny_dataset, tmp_path):
        def backed_by_memmap(arr):
            while arr is not None:
                if isinstance(arr, np.memmap):
                    return True
                arr = getattr(arr, "base", None)
            return False

        save_graph(tiny_dataset.graph, tmp_path / "g")
        graph = load_graph(tmp_path / "g", mmap_mode="r")
        feats = graph.node_features
        assert feats and all(backed_by_memmap(a) for a in feats.values())

    def test_invalid_mode_rejected(self, checkpoint_path):
        with pytest.raises(ValueError, match="mmap_mode"):
            load_checkpoint(checkpoint_path, mmap_mode="r+")

    def test_prediction_parity_bitwise(self, checkpoint_path):
        regular = InferenceEngine.from_checkpoint(checkpoint_path)
        mapped = InferenceEngine.from_checkpoint(checkpoint_path,
                                                 mmap_mode="r")
        ids = list(range(0, int(regular.num_papers), 7))
        a = regular.predict(ids)
        b = mapped.predict(ids)
        assert np.array_equal(a, b)
        assert np.array_equal(regular.predict_all(), mapped.predict_all())

    def test_tracemalloc_ceiling(self, tmp_path):
        """The array payload must not land on the Python heap.

        An 8 MiB payload loaded through ``mmap_npz`` (warm extraction
        cache) must allocate a small fraction of its size — the bytes
        stay in the page cache; only ndarray headers hit the heap.
        ``np.load`` on the same file pays the full payload, which pins
        that the ceiling is real and not just a tiny workload.
        """
        payload = 8 * 2**20
        arr = np.arange(payload // 8, dtype=np.float64)
        path = tmp_path / "big.npz"
        np.savez(path, payload=arr)
        mmap_npz(path)  # warm the extraction cache outside the trace

        def traced(load):
            tracemalloc.start()
            try:
                before, _ = tracemalloc.get_traced_memory()
                loaded = load()
                total = float(np.asarray(loaded["payload"][:16]).sum())
                after, _ = tracemalloc.get_traced_memory()
            finally:
                tracemalloc.stop()
            assert total == float(arr[:16].sum())
            return after - before

        mmap_heap = traced(lambda: mmap_npz(path))
        copy_heap = traced(
            lambda: dict(np.load(path, allow_pickle=False).items()))
        assert mmap_heap < 0.1 * payload, \
            f"mmap load allocated {mmap_heap} bytes of {payload}"
        assert copy_heap > 0.9 * payload  # the comparison is meaningful
