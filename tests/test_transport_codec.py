"""Property-based fuzzing of the transport frame codec (DESIGN §18).

The framing layer's contract is absolute: arbitrary payload trees
roundtrip bit-exactly, and *any* damage to the byte stream — truncation,
a flipped bit, a replayed frame, plain garbage — surfaces as
:class:`CodecError` (or an incomplete-frame wait), never as a silently
mis-parsed message and never as an unbounded read.  Hypothesis hunts
the corner cases a hand-written corruption test would miss.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.fleet.transport import (
    Codec,
    CodecError,
    FenceRegistry,
    FrameDecoder,
    pack_message,
    unpack_message,
)

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
_scalars = (
    st.none()
    | st.booleans()
    | st.integers(min_value=-2**31, max_value=2**31)
    | st.floats(allow_nan=False, allow_infinity=False, width=64)
    | st.text(max_size=12)
)
_arrays = hnp.arrays(
    dtype=st.sampled_from([np.float64, np.float32, np.int32, np.uint8]),
    shape=hnp.array_shapes(max_dims=2, max_side=4),
)
_keys = st.text(max_size=6).filter(lambda s: s != "__nd__")
_trees = st.recursive(
    _scalars | _arrays,
    lambda children: (st.lists(children, max_size=3)
                      | st.dictionaries(_keys, children, max_size=3)),
    max_leaves=8,
)
_messages = st.dictionaries(_keys, _trees, max_size=3)


def _equivalent(sent, received):
    """Structural equality with bit-exact array comparison."""
    if isinstance(sent, np.ndarray):
        return (isinstance(received, np.ndarray)
                and received.dtype == sent.dtype
                and received.shape == sent.shape
                and received.tobytes() == sent.tobytes())
    if isinstance(sent, (list, tuple)):
        return (isinstance(received, list)
                and len(received) == len(sent)
                and all(_equivalent(a, b)
                        for a, b in zip(sent, received)))
    if isinstance(sent, dict):
        return (isinstance(received, dict)
                and set(received) == set(sent)
                and all(_equivalent(v, received[k])
                        for k, v in sent.items()))
    return received == sent


# ----------------------------------------------------------------------
# Payload roundtrip
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(message=_messages)
def test_pack_unpack_roundtrip(message):
    assert _equivalent(message, unpack_message(pack_message(message)))


@settings(max_examples=60, deadline=None)
@given(messages=st.lists(_messages, min_size=1, max_size=4),
       chunk=st.integers(min_value=1, max_value=64))
def test_frame_stream_roundtrip_any_chunking(messages, chunk):
    codec = Codec()
    stream = b"".join(codec.encode_message(m, seq)
                      for seq, m in enumerate(messages))
    decoder = FrameDecoder()
    frames = []
    for start in range(0, len(stream), chunk):
        frames.extend(decoder.feed(stream[start:start + chunk]))
    assert len(frames) == len(messages)
    for sent, payload in zip(messages, frames):
        assert _equivalent(sent, unpack_message(payload))


# ----------------------------------------------------------------------
# Damage: truncation, bit flips, replays, garbage
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(messages=st.lists(_messages, min_size=1, max_size=3),
       data=st.data())
def test_truncation_yields_only_a_clean_prefix(messages, data):
    codec = Codec()
    stream = b"".join(codec.encode_message(m, seq)
                      for seq, m in enumerate(messages))
    cut = data.draw(st.integers(min_value=0, max_value=len(stream) - 1))
    frames = FrameDecoder().feed(stream[:cut])  # must not raise
    assert len(frames) < len(messages)
    for sent, payload in zip(messages, frames):
        assert _equivalent(sent, unpack_message(payload))


@settings(max_examples=120, deadline=None)
@given(message=_messages, data=st.data())
def test_single_byte_flip_never_misparses(message, data):
    frame = bytearray(Codec().encode_message(message, 0))
    pos = data.draw(st.integers(min_value=0, max_value=len(frame) - 1))
    flip = data.draw(st.integers(min_value=1, max_value=255))
    frame[pos] ^= flip
    decoder = FrameDecoder()
    try:
        frames = decoder.feed(bytes(frame))
    except CodecError:
        return  # loud rejection: the desired outcome
    # The only non-error outcome is "incomplete frame, still waiting"
    # (the flip landed in the length field and grew it).  A parsed
    # frame here would be a silent mis-parse — the one forbidden result.
    assert frames == []


@settings(max_examples=40, deadline=None)
@given(messages=st.lists(_messages, min_size=1, max_size=3),
       data=st.data())
def test_replayed_frame_always_raises(messages, data):
    codec = Codec()
    frames = [codec.encode_message(m, seq)
              for seq, m in enumerate(messages)]
    dup = data.draw(st.integers(min_value=0, max_value=len(frames) - 1))
    stream = b"".join(frames[:dup + 1]) + frames[dup]
    with pytest.raises(CodecError):
        FrameDecoder().feed(stream)


@settings(max_examples=80, deadline=None)
@given(garbage=st.binary(min_size=1, max_size=256))
def test_garbage_never_parses_and_never_hangs(garbage):
    decoder = FrameDecoder()
    try:
        frames = decoder.feed(garbage)
    except CodecError:
        return
    # Surviving garbage must be a plausible frame *prefix* still being
    # awaited — the buffer is bounded by what was fed, nothing parsed.
    assert frames == []
    assert garbage[:2] in (b"R", b"RF", b"RF"[:len(garbage)])


@settings(max_examples=60, deadline=None)
@given(message=_messages, junk=st.binary(min_size=1, max_size=32))
def test_valid_frame_then_junk_poisons_not_misparses(message, junk):
    codec = Codec()
    decoder = FrameDecoder()
    [payload] = decoder.feed(codec.encode_message(message, 0))
    assert _equivalent(message, unpack_message(payload))
    try:
        frames = decoder.feed(junk)
    except CodecError:
        return
    assert frames == []


# ----------------------------------------------------------------------
# Fencing-token ordering invariants
# ----------------------------------------------------------------------
_fence_ops = st.lists(
    st.tuples(st.sampled_from(["a", "b", "c"]),
              st.sampled_from(["advance", "check_current", "check_stale"])),
    max_size=40,
)


@settings(max_examples=60, deadline=None)
@given(ops=_fence_ops)
def test_fence_generation_ordering(ops):
    """check() accepts exactly the latest generation, rejects the past.

    The model: a member's generation equals the number of advance()
    calls so far; every check against an older generation is rejected
    and logged; generations never move backwards.
    """
    fences = FenceRegistry()
    model = {"a": 0, "b": 0, "c": 0}
    stale_checks = 0
    for name, op in ops:
        if op == "advance":
            gen = fences.advance(name)
            model[name] += 1
            assert gen == model[name]
        elif op == "check_current":
            assert fences.check(name, model[name], "prop")
        else:
            stale = model[name] - 1  # most recently fenced-out holder
            if stale < 0:
                continue
            assert not fences.check(name, stale, "prop")
            stale_checks += 1
        assert fences.current(name) == model[name]
    rejections = fences.rejections
    assert len(rejections) == stale_checks
    for rejection in rejections:
        assert rejection["stale_gen"] < rejection["current_gen"]
