"""Property-based tests on nn-layer invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn import Adam, LayerNorm, Linear, Parameter
from repro.tensor import Tensor

floats = st.floats(min_value=-10, max_value=10, allow_nan=False,
                   allow_infinity=False)


def arrays(shape):
    return hnp.arrays(np.float64, shape, elements=floats)


@settings(max_examples=25, deadline=None)
@given(arrays((4, 6)))
def test_layernorm_output_statistics(x):
    out = LayerNorm(6)(Tensor(x)).data
    assert np.allclose(out.mean(axis=1), 0.0, atol=1e-6)


@settings(max_examples=25, deadline=None)
@given(arrays((3, 4)), arrays((3, 4)))
def test_linear_is_linear(a, b):
    rng = np.random.default_rng(0)
    layer = Linear(4, 2, rng, bias=False)
    lhs = layer(Tensor(a + b)).data
    rhs = (layer(Tensor(a)) + layer(Tensor(b))).data
    assert np.allclose(lhs, rhs, atol=1e-8)


@settings(max_examples=25, deadline=None)
@given(arrays((5,)), st.floats(min_value=1e-4, max_value=0.5))
def test_adam_first_step_bounded_by_lr(grad, lr):
    """Adam's first update magnitude is ~lr per coordinate (bias-corrected)."""
    w = Parameter(np.zeros(5))
    opt = Adam([w], lr=lr)
    w.grad = grad.copy()
    opt.step()
    moved = np.abs(w.data)
    assert np.all(moved <= 1.5 * lr + 1e-12)
    # Coordinates with a real gradient actually move.
    assert np.all(moved[np.abs(grad) > 1e-6] > 0)


@settings(max_examples=25, deadline=None)
@given(arrays((4, 3)))
def test_linear_bias_adds_constant_row(x):
    rng = np.random.default_rng(1)
    layer = Linear(3, 2, rng, bias=True)
    with_bias = layer(Tensor(x)).data
    no_bias = (Tensor(x) @ layer.weight).data
    assert np.allclose(with_bias - no_bias, layer.bias.data, atol=1e-9)
