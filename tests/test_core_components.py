"""Unit tests for CATE-HGN components: composition, HGN, MI, CA, TE."""

import numpy as np
import pytest

from repro.core import (
    CAConfig,
    CATEHGNConfig,
    CATEHGNModel,
    ClusterModule,
    GraphBatch,
    HGNConfig,
    MIEstimator,
    OneSpaceHGN,
    TEConfig,
    TextEnhancer,
    concat_one_space,
    get_composition,
)
from repro.hetnet import PAPER, TERM
from repro.tensor import Tensor, circular_correlation


@pytest.fixture(scope="module")
def batch(tiny_dataset):
    norm = (tiny_dataset.labels - tiny_dataset.labels.mean())
    return GraphBatch.from_graph(tiny_dataset.graph, tiny_dataset.train_idx,
                                 norm[tiny_dataset.train_idx])


def small_model(batch, **overrides) -> CATEHGNModel:
    params = dict(dim=8, attention_heads=2, num_clusters=4, kappa=10, seed=0)
    params.update(overrides)
    config = CATEHGNConfig(**params)
    dims = {t: batch.features[t].shape[1] for t in batch.node_types}
    return CATEHGNModel(config, batch.node_types, dims,
                        list(batch.edges.keys()))


class TestComposition:
    def test_sub_mult_corr(self, rng):
        a, b = Tensor(rng.normal(size=(3, 4))), Tensor(rng.normal(size=(3, 4)))
        assert np.allclose(get_composition("sub")(a, b).data, a.data - b.data)
        assert np.allclose(get_composition("mult")(a, b).data, a.data * b.data)
        assert np.allclose(get_composition("corr")(a, b).data,
                           circular_correlation(a, b).data)

    def test_unknown_composition(self):
        with pytest.raises(ValueError):
            get_composition("nope")


class TestGraphBatch:
    def test_slices_partition_one_space(self, batch):
        total = sum(batch.num_nodes.values())
        assert batch.total_nodes == total
        flat = []
        for t in batch.node_types:
            lo, n = batch.slices[t]
            flat.extend(range(lo, lo + n))
        assert sorted(flat) == list(range(total))

    def test_normalized_weights_in_unit_interval(self, batch):
        for _key, (_s, _d, _w, wn) in batch.edges.items():
            if len(wn):
                assert wn.max() <= 1.0 + 1e-12 and wn.min() >= 0

    def test_with_label_inputs_adds_two_columns(self, batch):
        ids = batch.labeled_ids[:5]
        vals = batch.labels[:5]
        aug = batch.with_label_inputs(ids, vals, ids, vals)
        assert (aug.features["paper"].shape[1]
                == batch.features["paper"].shape[1] + 2)
        flags = aug.features["paper"][:, -1]
        assert flags[ids].sum() == len(ids) and flags.sum() == len(ids)

    def test_with_label_inputs_does_not_mutate_base(self, batch):
        before = batch.features["paper"].shape[1]
        batch.with_label_inputs(batch.labeled_ids, batch.labels,
                                batch.labeled_ids, batch.labels)
        assert batch.features["paper"].shape[1] == before


class TestOneSpaceHGN:
    def test_forward_shapes_one_space(self, batch):
        model = small_model(batch, use_ca=False, use_te=False)
        out = model.hgn(batch)
        assert len(out.layers) == 3  # encoder + 2 conv layers
        for layer in out.layers:
            for t in batch.node_types:
                assert layer[t].shape == (batch.num_nodes[t], 8)

    def test_parameter_count_independent_of_graph_size(self, batch,
                                                       tiny_single_dataset):
        model_a = small_model(batch, use_ca=False, use_te=False)
        other = GraphBatch.from_graph(
            tiny_single_dataset.graph, tiny_single_dataset.train_idx,
            tiny_single_dataset.labels[tiny_single_dataset.train_idx],
        )
        dims = {t: other.features[t].shape[1] for t in other.node_types}
        model_b = CATEHGNModel(
            CATEHGNConfig(dim=8, attention_heads=2, num_clusters=4,
                          use_ca=False, use_te=False, seed=0),
            other.node_types, dims, list(other.edges.keys()),
        )
        # The paper's complexity claim: parameters don't grow with |V|.
        assert model_a.hgn.num_parameters() == model_b.hgn.num_parameters()

    def test_gradients_reach_all_parameters(self, batch):
        model = small_model(batch)
        rng = np.random.default_rng(0)
        state = model.forward_state(batch)
        loss = model.hgn_loss(state, batch, rng) + model.ca_loss(state)
        loss.backward()
        missing = [name for name, p in model.named_parameters()
                   if p.grad is None]
        assert missing == [], f"no gradient for {missing}"

    def test_attention_off_uses_concat_path(self, batch):
        model = small_model(batch, use_attention=False, use_ca=False,
                            use_te=False)
        out = model.hgn(batch)
        assert out.layers[-1][PAPER].shape == (batch.num_nodes[PAPER], 8)

    def test_per_layer_regressors(self, batch):
        model = small_model(batch, use_ca=False, use_te=False)
        out = model.hgn(batch)
        for l in (1, 2):
            pred = model.hgn.regress(l, out.layers[l][PAPER])
            assert pred.shape == (batch.num_nodes[PAPER],)

    def test_compositions_give_different_embeddings(self, batch):
        outs = {}
        for comp in ("sub", "mult", "corr"):
            model = small_model(batch, composition=comp, use_ca=False,
                                use_te=False)
            outs[comp] = model.hgn(batch).layers[-1][PAPER].data
        assert not np.allclose(outs["sub"], outs["mult"])
        assert not np.allclose(outs["mult"], outs["corr"])

    def test_forward_deterministic(self, batch):
        m1 = small_model(batch, use_ca=False, use_te=False)
        m2 = small_model(batch, use_ca=False, use_te=False)
        assert np.allclose(m1.hgn(batch).layers[-1][PAPER].data,
                           m2.hgn(batch).layers[-1][PAPER].data)


class TestMI:
    def test_mi_loss_scalar_finite(self, batch):
        model = small_model(batch, use_ca=False, use_te=False)
        est = model.mi
        state = model.forward_state(batch)
        rng = np.random.default_rng(0)
        loss = est.loss(state.masked, batch, rng, max_edges_per_type=50)
        assert loss.data.size == 1
        assert np.isfinite(loss.data)

    def test_mi_score_bilinear(self, rng):
        est = MIEstimator(4, seed=0)
        x = Tensor(rng.normal(size=(5, 4)))
        y = Tensor(rng.normal(size=(5, 4)))
        scores = est.score(x, y)
        expected = np.einsum("ij,jk,ik->i", x.data, est.W_d.data, y.data)
        assert np.allclose(scores.data, expected)

    def test_mi_loss_decreases_under_optimization(self, batch):
        from repro.nn import Adam

        model = small_model(batch, use_ca=False, use_te=False)
        rng = np.random.default_rng(0)
        opt = Adam(list(model.parameters()), lr=0.01)
        losses = []
        for _ in range(6):
            state = model.forward_state(batch)
            loss = model.unsupervised_loss(state, batch, rng)
            opt.zero_grad()
            loss.backward()
            opt.step()
            losses.append(float(loss.data))
        assert losses[-1] < losses[0]


class TestClusterModule:
    def make(self, dim=6, K=3, layers=2):
        return ClusterModule(CAConfig(num_clusters=K), dim, layers)

    def test_soft_assign_rows_normalized(self, rng):
        ca = self.make()
        h = Tensor(rng.normal(size=(10, 6)))
        q = ca.soft_assign(h, 0)
        assert q.shape == (10, 3)
        assert np.allclose(q.data.sum(axis=1), 1.0)

    def test_soft_assign_prefers_nearest_center(self):
        # Assignments are computed on the unit sphere, so centers should
        # live there too (as the trainer's initialization guarantees).
        ca = self.make(dim=2, K=2)
        ca.set_centers(0, np.array([[1.0, 0.0], [0.0, 1.0]]))
        q = ca.soft_assign(Tensor(np.array([[5.0, 0.1], [0.1, 5.0]])), 0)
        assert q.data[0, 0] > 0.6 and q.data[1, 1] > 0.6

    def test_target_distribution_sharpens(self):
        q = np.array([[0.6, 0.4], [0.5, 0.5]])
        p = ClusterModule.target_distribution(q)
        assert p[0, 0] > q[0, 0]
        assert np.allclose(p.sum(axis=1), 1.0)

    def test_masked_embeddings_shape_and_positivity_of_mask(self, rng):
        ca = self.make()
        h = Tensor(rng.normal(size=(10, 6)))
        q = ca.soft_assign(h, 0)
        masked = ca.mask_embeddings(h, q, 0)
        assert masked.shape == h.shape
        # Mask is sigmoid-positive: sign pattern preserved.
        assert np.all(np.sign(masked.data) == np.sign(h.data))

    def test_mask_with_specific_cluster(self, rng):
        ca = self.make()
        h = Tensor(rng.normal(size=(4, 6)))
        m0 = ca.mask_with_cluster(h, 0, 0).data
        m1 = ca.mask_with_cluster(h, 1, 0).data
        assert not np.allclose(m0, m1)

    def test_losses_combine_flags(self, rng):
        h = Tensor(rng.normal(size=(12, 6)))
        full = self.make()
        qs = [full.soft_assign(h, l) for l in range(3)]
        assert np.isfinite(full.losses(qs).data)
        off = ClusterModule(CAConfig(num_clusters=3, use_self_training=False,
                                     use_consistency=False,
                                     use_disparity=False), 6, 2)
        assert off.losses(qs).data == 0.0

    def test_set_centers_validates_shape(self):
        ca = self.make()
        with pytest.raises(ValueError):
            ca.set_centers(0, np.zeros((2, 2)))

    def test_center_partition(self):
        ca = self.make()
        centers = {id(p) for p in ca.center_parameters()}
        others = {id(p) for p in ca.non_center_parameters()}
        assert centers.isdisjoint(others)
        assert len(centers) == 3 and len(others) == 3

    def test_concat_one_space_order(self, rng):
        a = Tensor(rng.normal(size=(2, 3)))
        b = Tensor(rng.normal(size=(4, 3)))
        out = concat_one_space({"x": a, "y": b}, ["x", "y"])
        assert out.shape == (6, 3)
        assert np.allclose(out.data[:2], a.data)


class TestTextEnhancer:
    def test_bootstrap_sets_anchor_first(self, tiny_dataset):
        te = TextEnhancer(tiny_dataset.text, tiny_dataset.domain_names,
                          TEConfig(kappa=15))
        sets = te.bootstrap()
        assert len(sets) == len(tiny_dataset.domain_names)
        for name, terms in zip(tiny_dataset.domain_names, sets):
            assert terms[0] == name
            assert len(terms) <= 15

    def test_bootstrap_finds_domain_terms(self, tiny_dataset):
        te = TextEnhancer(tiny_dataset.text, tiny_dataset.domain_names,
                          TEConfig(kappa=20))
        sets = te.bootstrap()
        data_truth = set(tiny_dataset.world.quality_terms(0))
        hits = len(set(sets[0]) & data_truth)
        assert hits >= len(sets[0]) // 3

    def test_bootstrap_fallback_without_bert(self, tiny_dataset):
        te = TextEnhancer(tiny_dataset.text, tiny_dataset.domain_names,
                          TEConfig(use_bert_init=False))
        sets = te.bootstrap(fallback_terms=tiny_dataset.term_tokens)
        total = sum(len(s) for s in sets)
        assert total > 0
        with pytest.raises(ValueError):
            te.bootstrap()

    def test_build_links_tfidf_vs_binary(self, tiny_dataset):
        terms = ["mining", "kernel", "cloud"]
        te_tfidf = TextEnhancer(tiny_dataset.text, tiny_dataset.domain_names,
                                TEConfig(use_tfidf=True))
        te_bin = TextEnhancer(tiny_dataset.text, tiny_dataset.domain_names,
                              TEConfig(use_tfidf=False))
        _p1, _t1, w1 = te_tfidf.build_links(terms)
        _p2, _t2, w2 = te_bin.build_links(terms)
        assert len(set(np.round(w1, 6))) > 1  # graded weights
        assert np.all(w2 == 1.0)  # binary weights

    def test_refine_respects_set_sizes(self, tiny_dataset):
        te = TextEnhancer(tiny_dataset.text, tiny_dataset.domain_names,
                          TEConfig(kappa=10))
        sets = te.bootstrap()
        impacts = {t: 1.0 for s in sets for t in s}
        refined = te.refine(sets, impacts)
        for old, new in zip(sets, refined):
            assert len(new) == max(len(old), 1)

    def test_refine_prefers_high_impact_votes(self, tiny_dataset):
        te = TextEnhancer(tiny_dataset.text, tiny_dataset.domain_names,
                          TEConfig(kappa=10))
        sets = [["mining", "kernel"]]
        up = te.refine(sets, {"mining": 100.0, "kernel": 0.0})[0]
        down = te.refine(sets, {"mining": 0.0, "kernel": 100.0})[0]
        assert up != down

    def test_rebuild_graph_terms_mutates_graph(self, tiny_dataset):
        from repro.core.trainer import _clone_graph

        graph = _clone_graph(tiny_dataset.graph)
        te = TextEnhancer(tiny_dataset.text, tiny_dataset.domain_names,
                          TEConfig(kappa=10))
        sets = te.bootstrap()
        tokens = te.rebuild_graph_terms(graph, sets)
        assert graph.num_nodes[TERM] == len(tokens)
        assert graph.node_names[TERM] == tokens
        graph.validate()

    def test_union_deduplicates(self):
        assert TextEnhancer.union([["a", "b"], ["b", "c"]]) == ["a", "b", "c"]
