"""Tests for metrics, significance testing, runners, and reporting."""

import numpy as np
import pytest

from repro.eval import (
    ModelResult,
    default_cate_config,
    evaluate_model,
    mae,
    make_cate_variants,
    paired_significance,
    r2,
    render_bar_chart,
    render_series,
    render_table,
    render_table2,
    rmse,
    run_roster,
    significance_stars,
)


class TestMetrics:
    def test_rmse_zero_for_perfect(self):
        y = np.array([1.0, 2.0, 3.0])
        assert rmse(y, y) == 0.0

    def test_rmse_known_value(self):
        assert rmse(np.zeros(4), np.full(4, 2.0)) == 2.0

    def test_rmse_shape_mismatch(self):
        with pytest.raises(ValueError):
            rmse(np.zeros(3), np.zeros(4))

    def test_rmse_empty_is_nan(self):
        assert np.isnan(rmse(np.array([]), np.array([])))

    def test_mae(self):
        assert mae(np.array([0.0, 0.0]), np.array([1.0, -3.0])) == 2.0

    def test_r2_perfect_and_mean(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2(y, y) == 1.0
        assert abs(r2(y, np.full(3, 2.0))) < 1e-12

    def test_paired_significance_detects_better_model(self):
        rng = np.random.default_rng(0)
        y = rng.normal(size=200)
        good = y + rng.normal(0, 0.1, size=200)
        bad = y + rng.normal(0, 1.0, size=200)
        t, p = paired_significance(y, good, bad)
        assert t < 0 and p < 0.01

    def test_paired_significance_symmetric_models(self):
        rng = np.random.default_rng(0)
        y = rng.normal(size=200)
        a = y + rng.normal(0, 0.5, size=200)
        t, p = paired_significance(y, a, a)
        assert np.isnan(p) or p > 0.9  # identical errors: no signal


class TestRunner:
    def test_evaluate_model_fields(self, tiny_dataset):
        from repro.baselines import CCP

        result = evaluate_model("CCP", CCP(), tiny_dataset)
        assert isinstance(result, ModelResult)
        assert result.name == "CCP"
        assert result.dataset == tiny_dataset.name
        assert np.isfinite(result.test_rmse)
        assert result.seconds > 0
        assert result.predictions.shape == (tiny_dataset.num_papers,)

    def test_make_cate_variants_flags(self):
        variants = make_cate_variants(dim=8)
        assert set(variants) == {"HGN", "CA-HGN", "CATE-HGN"}
        assert not variants["HGN"].config.use_ca
        assert not variants["HGN"].config.use_te
        assert variants["CA-HGN"].config.use_ca
        assert not variants["CA-HGN"].config.use_te
        assert variants["CATE-HGN"].config.use_ca
        assert variants["CATE-HGN"].config.use_te

    def test_default_cate_config_overrides(self):
        cfg = default_cate_config(dim=8, outer_iters=99)
        assert cfg.dim == 8 and cfg.outer_iters == 99

    def test_run_roster_and_stars(self, tiny_dataset):
        from repro.baselines import CCP, CPDF

        results = run_roster(tiny_dataset, {"CCP": CCP(), "CATE-HGN": CPDF()})
        table = {tiny_dataset.name: results}
        stars = significance_stars(table, {tiny_dataset.name: tiny_dataset})
        assert set(stars) == {tiny_dataset.name}
        assert isinstance(stars[tiny_dataset.name], bool)


class TestReporting:
    def test_render_table_alignment(self):
        out = render_table(["a", "bb"], [["1", "2"], ["333", "4"]], "T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "333" in out

    def test_render_table2_layout(self):
        class R:
            def __init__(self, v):
                self.test_rmse = v

        results = {"full": {"BERT": R(2.0), "CATE-HGN": R(1.0)}}
        out = render_table2(results, ["BERT", "CATE-HGN", "missing"],
                            stars={"full": True})
        assert "1.0000*" in out
        assert "2.0000" in out
        assert "-" in out  # missing model row

    def test_render_bar_chart(self):
        out = render_bar_chart(["a", "bb"], [1.0, 2.0], title="Fig")
        assert out.splitlines()[0] == "Fig"
        assert out.count("#") > 0

    def test_render_series(self):
        out = render_series([2, 5], [1.5, 1.25], title="sweep", x_name="K")
        assert "K" in out and "1.2500" in out
