"""Hardened-serving behaviour: overload shedding, deadlines, bad clients.

These tests run the real ``ResilientHTTPServer`` stack against a stub
engine (no training, no checkpoint) so each failure mode is exercised
deterministically:

- in-flight limit -> 503 + ``Retry-After`` + shed counters + degraded
  ``/healthz`` (which bypasses the limiter);
- body larger than the cap -> 413 before a byte of payload is read;
- a client that promises more body than it sends -> 400, bounded by the
  read timeout, handler thread released;
- a client that slams the connection mid-response -> counted as a
  disconnect, server keeps serving;
- deadline overruns -> 504 + counter;
- concurrent hammering -> exact request counters (no lost/duplicated
  increments under ThreadingHTTPServer).
"""

import json
import socket
import struct
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.serve import LRUCache, ServiceLimits, ServiceMetrics, make_server
from repro.serve.service import InflightLimiter


# ----------------------------------------------------------------------
# Stub engine: the handler's full surface, none of the model weight
# ----------------------------------------------------------------------
class StubEngine:
    """Duck-typed InferenceEngine: instant predictions, optional gating."""

    def __init__(self, num_papers: int = 32, cache_size: int = 64) -> None:
        self.num_papers = num_papers
        self.freeze_seconds = 0.0
        self.cache = LRUCache(cache_size)
        self.gate = threading.Event()  # when cleared, predict blocks
        self.gate.set()
        self.delay = 0.0

    def info(self) -> dict:
        return {"num_papers": self.num_papers, "stub": True}

    def predict(self, paper_ids):
        ids = np.asarray(paper_ids, dtype=np.intp).reshape(-1)
        if len(ids) and (ids.min() < 0 or ids.max() >= self.num_papers):
            raise IndexError(f"paper id out of range [0, {self.num_papers})")
        if self.delay:
            time.sleep(self.delay)
        self.gate.wait(timeout=30)
        for pid in ids:
            found, _ = self.cache.get(int(pid))
            if not found:
                self.cache.put(int(pid), float(pid))
        return ids.astype(np.float64)

    def rank(self, node_type, k=10, cluster=None):
        if node_type != "paper":
            raise KeyError(f"unknown node type {node_type!r}")
        return [{"id": i, "name": str(i), "score": float(-i)}
                for i in range(min(int(k), self.num_papers))]

    def score_title(self, title) -> float:
        return 1.0


@pytest.fixture()
def server_factory():
    """Boot a hardened server around a StubEngine; auto-teardown."""
    servers = []

    def boot(limits: ServiceLimits, engine: StubEngine = None):
        engine = engine or StubEngine()
        server = make_server(engine, port=0, limits=limits,
                             metrics=ServiceMetrics())
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        servers.append((server, thread))
        base = f"http://127.0.0.1:{server.server_address[1]}"
        return server, engine, base

    yield boot
    for server, thread in servers:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def _get(url, timeout=10):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.status, dict(response.headers), \
            json.loads(response.read())


def _metrics(base):
    return _get(base + "/metrics")[2]


def _wait_drained(server, timeout=5.0):
    """Wait for the limiter to release (the client can observe the
    response a hair before the handler thread runs its finally block)."""
    deadline = time.time() + timeout
    while server.limiter.in_use > 0 and time.time() < deadline:
        time.sleep(0.01)
    return server.limiter.in_use


# ----------------------------------------------------------------------
# Overload shedding
# ----------------------------------------------------------------------
class TestOverload:
    def test_shed_503_with_retry_after_and_degraded_healthz(
            self, server_factory):
        limits = ServiceLimits(max_inflight=2, retry_after_seconds=7)
        server, engine, base = server_factory(limits)
        engine.gate.clear()  # park /predict handlers inside the engine

        results = []

        def hit():
            try:
                results.append(("ok", _get(base + "/predict?ids=1")[0]))
            except urllib.error.HTTPError as err:
                retry = err.headers.get("Retry-After")
                results.append(("http", err.code, retry))

        workers = [threading.Thread(target=hit) for _ in range(2)]
        for w in workers:
            w.start()
        # Wait until both slots are genuinely occupied.
        deadline = time.time() + 5
        while server.limiter.in_use < 2 and time.time() < deadline:
            time.sleep(0.01)
        assert server.limiter.in_use == 2

        # Health checks bypass the limiter and report saturation.
        status, _headers, health = _get(base + "/healthz")
        assert status == 200
        assert health["status"] == "degraded"
        assert health["inflight"] == 2 and health["inflight_limit"] == 2

        # A third work request is shed immediately: 503 + Retry-After.
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(base + "/predict?ids=2", timeout=5)
        assert err.value.code == 503
        assert err.value.headers["Retry-After"] == "7"

        engine.gate.set()  # release the parked handlers
        for w in workers:
            w.join(timeout=10)
        assert results.count(("ok", 200)) == 2

        body = _metrics(base)
        assert body["total_shed"] == 1
        assert body["endpoints"]["/predict"]["shed"] == 1
        assert _wait_drained(server) == 0  # every slot released

        # Back to healthy once drained.
        assert _get(base + "/healthz")[2]["status"] == "ok"

    def test_limiter_releases_on_handler_error(self, server_factory):
        server, _engine, base = server_factory(ServiceLimits(max_inflight=1))
        with pytest.raises(urllib.error.HTTPError):
            _get(base + "/predict?ids=10000")  # 400 out-of-range
        assert _wait_drained(server) == 0
        assert _get(base + "/predict?ids=1")[0] == 200  # slot reusable

    def test_inflight_limiter_unit(self):
        limiter = InflightLimiter(2)
        assert limiter.try_acquire() and limiter.try_acquire()
        assert limiter.saturated and not limiter.try_acquire()
        limiter.release()
        assert not limiter.saturated and limiter.try_acquire()
        limiter.release()
        limiter.release()
        with pytest.raises(RuntimeError):
            limiter.release()


# ----------------------------------------------------------------------
# Bad clients
# ----------------------------------------------------------------------
class TestBadClients:
    def test_oversized_body_413(self, server_factory):
        _server, _engine, base = server_factory(
            ServiceLimits(max_body_bytes=256))
        payload = json.dumps({"paper_ids": list(range(2000))}).encode()
        request = urllib.request.Request(
            base + "/predict", data=payload,
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=10)
        assert err.value.code == 413
        body = _metrics(base)
        assert body["endpoints"]["/predict"]["errors"] == 1

    def test_truncated_body_400_within_read_timeout(self, server_factory):
        """Promise 512 body bytes, send 5, stall: 400, not a hung thread."""
        server, _engine, base = server_factory(
            ServiceLimits(read_timeout=0.5))
        port = server.server_address[1]
        start = time.time()
        with socket.create_connection(("127.0.0.1", port), timeout=10) as s:
            s.sendall(b"POST /predict HTTP/1.1\r\n"
                      b"Host: x\r\nContent-Type: application/json\r\n"
                      b"Content-Length: 512\r\n\r\n{\"pa")
            s.settimeout(10)
            response = b""
            while b"\r\n\r\n" not in response:
                chunk = s.recv(4096)
                if not chunk:
                    break
                response += chunk
        elapsed = time.time() - start
        assert b"400" in response.split(b"\r\n", 1)[0]
        assert b"Content-Length" in response
        assert elapsed < 5.0, "read timeout did not bound the stall"
        # The handler thread was released and the server still works.
        assert _get(base + "/predict?ids=1")[0] == 200

    def test_half_closed_body_400(self, server_factory):
        """Client sends a short body then FINs: 400 immediately."""
        server, _engine, base = server_factory(
            ServiceLimits(read_timeout=5.0))
        port = server.server_address[1]
        s = socket.create_connection(("127.0.0.1", port), timeout=10)
        s.sendall(b"POST /predict HTTP/1.1\r\n"
                  b"Host: x\r\nContent-Length: 512\r\n\r\nshort")
        s.shutdown(socket.SHUT_WR)
        s.settimeout(10)
        response = b""
        try:
            while True:
                chunk = s.recv(4096)
                if not chunk:
                    break
                response += chunk
        finally:
            s.close()
        assert b"400" in response.split(b"\r\n", 1)[0]

    def test_client_disconnect_counted_not_fatal(self, server_factory):
        server, engine, base = server_factory(ServiceLimits())
        engine.gate.clear()  # hold the response until the client is gone
        port = server.server_address[1]
        s = socket.create_connection(("127.0.0.1", port), timeout=10)
        s.sendall(b"GET /predict?ids=3 HTTP/1.1\r\nHost: x\r\n\r\n")
        # Wait for the handler to pick the request up, then RST the socket
        # (SO_LINGER 0 => hard reset, not a graceful FIN).
        deadline = time.time() + 5
        while server.limiter.in_use < 1 and time.time() < deadline:
            time.sleep(0.01)
        s.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                     struct.pack("ii", 1, 0))
        s.close()
        engine.gate.set()

        deadline = time.time() + 5
        total = 0
        while time.time() < deadline:
            total = _metrics(base)["total_disconnects"]
            if total >= 1:
                break
            time.sleep(0.05)
        assert total >= 1, "client disconnect was not recorded"
        # And the server shrugged it off.
        assert _wait_drained(server) == 0
        assert _get(base + "/predict?ids=1")[0] == 200


# ----------------------------------------------------------------------
# Deadlines
# ----------------------------------------------------------------------
class TestDeadline:
    def test_slow_request_504_and_counted(self, server_factory):
        engine = StubEngine()
        engine.delay = 0.25
        _server, _engine, base = server_factory(
            ServiceLimits(deadline_seconds=0.05), engine)
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(base + "/predict?ids=1")
        assert err.value.code == 504
        assert b"deadline" in err.value.read()
        body = _metrics(base)
        assert body["total_deadline_timeouts"] == 1
        assert body["endpoints"]["/predict"]["deadline_timeouts"] == 1

    def test_fast_request_unaffected(self, server_factory):
        _server, _engine, base = server_factory(
            ServiceLimits(deadline_seconds=10.0))
        assert _get(base + "/predict?ids=1")[0] == 200


# ----------------------------------------------------------------------
# Concurrency: exact counters under load
# ----------------------------------------------------------------------
class TestConcurrentCounters:
    THREADS = 8
    PER_THREAD = 25

    def test_metrics_and_cache_exact_under_load(self, server_factory,
                                                run_threads):
        server, engine, base = server_factory(ServiceLimits(max_inflight=64))

        def worker(tid):
            for i in range(self.PER_THREAD):
                pid = (tid * self.PER_THREAD + i) % engine.num_papers
                status, _h, body = _get(f"{base}/predict?ids={pid}")
                assert status == 200
                assert body["predictions"] == [float(pid)]

        run_threads(worker, count=self.THREADS)

        total = self.THREADS * self.PER_THREAD
        body = _metrics(base)
        predict = body["endpoints"]["/predict"]
        assert predict["requests"] == total  # exact, no lost increments
        assert predict["errors"] == 0
        assert body["total_shed"] == 0 and body["total_disconnects"] == 0
        cache = body["cache"]
        assert cache["hits"] + cache["misses"] == total
        assert cache["misses"] == engine.num_papers  # first touch per id
        assert _wait_drained(server) == 0

    def test_lru_cache_exact_counters_under_threads(self, run_threads):
        cache = LRUCache(capacity=16)
        lookups_per_thread = 500

        def worker(seed):
            rng = np.random.default_rng(seed)
            for _ in range(lookups_per_thread):
                key = int(rng.integers(0, 32))
                found, _ = cache.get(key)
                if not found:
                    cache.put(key, key)

        run_threads(worker, count=self.THREADS)
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] == (
            self.THREADS * lookups_per_thread
        )
        assert stats["size"] <= 16
        assert len(cache) == stats["size"]

    def test_service_metrics_thread_safe_observe(self, run_threads):
        metrics = ServiceMetrics()

        def worker(tid):
            for _ in range(1000):
                metrics.observe("/x", 0.001)
                metrics.record_shed("/x")

        run_threads(worker, count=6)
        snap = metrics.snapshot()
        assert snap["total_requests"] == 6000
        assert snap["total_shed"] == 6000


# ----------------------------------------------------------------------
# CLI flags
# ----------------------------------------------------------------------
def test_cli_limit_flags():
    from repro.serve.__main__ import build_parser

    args = build_parser().parse_args(
        ["model.npz", "--max-inflight", "4", "--max-body-bytes", "1024",
         "--read-timeout", "2.5", "--deadline", "1.5"]
    )
    assert args.max_inflight == 4
    assert args.max_body_bytes == 1024
    assert args.read_timeout == 2.5
    assert args.deadline == 1.5
