"""tsan-lite runtime detector: inversions, reentrancy, lock-held I/O."""

import threading
import time

import pytest

from repro.analysis.concurrency import (
    InstrumentedLock,
    LockHeldIOError,
    LockOrderError,
    RaceDetector,
    ReentrantAcquireError,
    detect_races,
)


def in_thread(fn, timeout=10):
    """Run fn in a worker thread; return (result, exception)."""
    box = {}

    def run():
        try:
            box["result"] = fn()
        except BaseException as exc:  # noqa: BLE001 — relayed to the test
            box["error"] = exc

    worker = threading.Thread(target=run, daemon=True)
    worker.start()
    worker.join(timeout=timeout)
    assert not worker.is_alive(), "worker hung"
    return box.get("result"), box.get("error")


class TestLockOrder:
    def test_inversion_detected_before_blocking(self):
        with detect_races(patch_factories=False) as detector:
            a = InstrumentedLock(name="A")
            b = InstrumentedLock(name="B")
            with a:
                with b:
                    pass

            def invert():
                with b:
                    with a:
                        pass

            _, error = in_thread(invert)
            assert isinstance(error, LockOrderError)
            assert "A" in str(error) and "B" in str(error)
            assert detector.violations == [error]
            detector.violations.clear()

    def test_transitive_inversion_detected(self):
        """A->B and B->C recorded; C->A must close the cycle."""
        with detect_races(patch_factories=False) as detector:
            a = InstrumentedLock(name="A")
            b = InstrumentedLock(name="B")
            c = InstrumentedLock(name="C")
            with a:
                with b:
                    pass
            with b:
                with c:
                    pass

            def close_cycle():
                with c:
                    with a:
                        pass

            _, error = in_thread(close_cycle)
            assert isinstance(error, LockOrderError)
            detector.violations.clear()

    def test_consistent_order_passes(self):
        with detect_races(patch_factories=False) as detector:
            a = InstrumentedLock(name="A")
            b = InstrumentedLock(name="B")

            def ordered():
                for _ in range(50):
                    with a:
                        with b:
                            pass

            workers = [threading.Thread(target=ordered) for _ in range(4)]
            for w in workers:
                w.start()
            for w in workers:
                w.join(timeout=10)
            assert detector.violations == []
            graph = detector.order_graph()
            assert graph.get("A") == {"B"}

    def test_collect_mode_raises_on_exit(self):
        with pytest.raises(LockOrderError):
            with detect_races(
                patch_factories=False, raise_immediately=False
            ):
                a = InstrumentedLock(name="A")
                b = InstrumentedLock(name="B")
                with a:
                    with b:
                        pass

                def invert():
                    with b:
                        with a:
                            pass

                _, error = in_thread(invert)
                assert error is None  # collected, not raised in-thread


class TestReentrancy:
    def test_nonreentrant_reacquire_raises(self):
        with detect_races(patch_factories=False) as detector:
            lock = InstrumentedLock(name="L")
            with lock:
                with pytest.raises(ReentrantAcquireError):
                    lock.acquire()
            detector.violations.clear()

    def test_reentrant_lock_reacquire_legal(self):
        with detect_races(patch_factories=False) as detector:
            lock = InstrumentedLock(name="R", reentrant=True)
            with lock:
                with lock:
                    pass
            assert detector.violations == []

    def test_nonblocking_probe_of_held_lock_legal(self):
        """Condition._is_owned probes acquire(False); must not raise."""
        with detect_races(patch_factories=False) as detector:
            lock = InstrumentedLock(name="L")
            with lock:
                assert lock.acquire(blocking=False) is False
            assert detector.violations == []

    def test_condition_wrapping_instrumented_lock_works(self):
        with detect_races() as detector:
            cond = threading.Condition(threading.Lock())
            fired = []

            def waiter():
                with cond:
                    cond.wait(timeout=5)
                    fired.append(True)

            worker = threading.Thread(target=waiter, daemon=True)
            worker.start()
            deadline = time.time() + 5
            while time.time() < deadline:
                with cond:
                    if worker.is_alive():
                        cond.notify_all()
                if fired:
                    break
            worker.join(timeout=5)
            assert fired == [True]
            assert detector.violations == []

    def test_condition_over_instrumented_rlock_notify(self):
        """Bare Condition() builds on RLock(); notify needs _is_owned.

        Without the Condition protocol on InstrumentedLock, the stdlib
        falls back to a non-blocking acquire probe — which *succeeds*
        on an RLock the caller owns, so notify() raises "cannot notify
        on un-acquired lock" on a lock that is very much held.
        """
        with detect_races() as detector:
            cond = threading.Condition()  # default lock: RLock()
            with cond:
                cond.notify_all()  # raised before the fix
            assert detector.violations == []

    def test_executor_future_resolves_inside_window(self):
        """concurrent.futures inside a window must still deliver results.

        Future.__init__ creates a Condition() — with the broken
        ownership probe, set_result() died in notify_all and waiters
        (e.g. asyncio run_in_executor) hung forever.
        """
        import concurrent.futures

        with detect_races() as detector:
            with concurrent.futures.ThreadPoolExecutor(1) as pool:
                assert pool.submit(lambda: 41 + 1).result(timeout=10) == 42
            assert detector.violations == []


class TestLockHeldIO:
    def test_sleep_under_lock_detected(self):
        with detect_races() as detector:
            lock = threading.Lock()
            with lock:
                with pytest.raises(LockHeldIOError):
                    time.sleep(0.001)
            detector.violations.clear()

    def test_sleep_outside_lock_fine(self):
        with detect_races() as detector:
            time.sleep(0.001)
            assert detector.violations == []


class TestFactoriesAndLifecycle:
    def test_factories_patched_and_restored(self):
        raw_lock = threading.Lock
        raw_sleep = time.sleep
        with detect_races():
            assert isinstance(threading.Lock(), InstrumentedLock)
            assert isinstance(threading.RLock(), InstrumentedLock)
        assert threading.Lock is raw_lock
        assert time.sleep is raw_sleep

    def test_windows_do_not_nest(self):
        with detect_races(patch_factories=False):
            with pytest.raises(RuntimeError, match="nest"):
                with detect_races(patch_factories=False):
                    pass

    def test_instrumented_lock_inert_outside_window(self):
        lock = InstrumentedLock(name="L")
        with lock:
            assert lock.locked()
        assert not lock.locked()

    def test_explicit_detector_wiring(self):
        detector = RaceDetector(raise_immediately=False)
        a = InstrumentedLock(name="A", detector=detector)
        b = InstrumentedLock(name="B", detector=detector)
        with a:
            with b:
                pass

        def invert():
            with b:
                with a:
                    pass

        _, error = in_thread(invert)
        assert error is None
        assert len(detector.violations) == 1
        assert isinstance(detector.violations[0], LockOrderError)

    def test_duck_typing_matches_lock_api(self):
        lock = InstrumentedLock(name="L")
        assert lock.acquire() is True
        assert lock.locked()
        lock.release()
        assert "InstrumentedLock" in repr(lock)
