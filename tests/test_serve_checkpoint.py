"""Checkpoint format: versioning, rejection, bitwise-exact roundtrips."""

import json

import numpy as np
import pytest

from repro.baselines import GAT, HAN, RGCN
from repro.baselines.gnn_common import GNNTrainConfig
from repro.core import CATEHGN
from repro.data import load_graph, save_graph
from repro.data.io import GRAPH_FORMAT_VERSION
from repro.eval.runner import default_cate_config
from repro.serve import (
    CHECKPOINT_FORMAT_VERSION,
    load_checkpoint,
    load_gnn_baseline,
    restore_catehgn,
    save_checkpoint,
    save_gnn_baseline,
)


@pytest.fixture(scope="module")
def fitted_cate(tiny_dataset):
    config = default_cate_config(dim=16, seed=0, outer_iters=2, mini_iters=2)
    return CATEHGN(config).fit(tiny_dataset)


# ----------------------------------------------------------------------
# Low-level container
# ----------------------------------------------------------------------
class TestContainer:
    def test_roundtrip_arrays_and_meta(self, tmp_path):
        state = {"layer.weight": np.arange(6.0).reshape(2, 3)}
        extras = {"ids": np.array([3, 1, 4], dtype=np.intp)}
        out = save_checkpoint(tmp_path / "ck", {"kind": "test", "x": 1},
                              state, extras)
        ckpt = load_checkpoint(out)
        assert ckpt.meta["format_version"] == CHECKPOINT_FORMAT_VERSION
        assert ckpt.meta["kind"] == "test" and ckpt.meta["x"] == 1
        assert np.array_equal(ckpt.state["layer.weight"],
                              state["layer.weight"])
        assert np.array_equal(ckpt.extras["ids"], extras["ids"])

    def test_unknown_version_rejected(self, tmp_path):
        out = save_checkpoint(tmp_path / "ck", {"kind": "test"}, {})
        # Rewrite the metadata blob with a future version.
        with np.load(out) as arrays:
            data = {k: arrays[k] for k in arrays.files}
        meta = json.loads(str(data["__checkpoint__"][()]))
        meta["format_version"] = CHECKPOINT_FORMAT_VERSION + 1
        data["__checkpoint__"] = np.array(json.dumps(meta))
        np.savez_compressed(out, **data)
        with pytest.raises(ValueError, match="format_version"):
            load_checkpoint(out)

    def test_non_checkpoint_npz_rejected(self, tmp_path):
        np.savez_compressed(tmp_path / "junk.npz", a=np.zeros(3))
        with pytest.raises(ValueError, match="not a repro.serve checkpoint"):
            load_checkpoint(tmp_path / "junk.npz")


# ----------------------------------------------------------------------
# Graph format versioning (data/io satellite)
# ----------------------------------------------------------------------
class TestGraphFormatVersion:
    def test_version_written_and_roundtrips(self, tiny_dataset, tmp_path):
        save_graph(tiny_dataset.graph, tmp_path / "g")
        meta = json.loads((tmp_path / "g.json").read_text())
        assert meta["format_version"] == GRAPH_FORMAT_VERSION
        loaded = load_graph(tmp_path / "g")
        assert loaded.num_nodes == tiny_dataset.graph.num_nodes
        # Edge insertion order is part of the format (summation order).
        assert list(loaded.edges) == list(tiny_dataset.graph.edges)

    def test_unknown_version_rejected(self, tiny_dataset, tmp_path):
        save_graph(tiny_dataset.graph, tmp_path / "g")
        meta = json.loads((tmp_path / "g.json").read_text())
        meta["format_version"] = GRAPH_FORMAT_VERSION + 7
        (tmp_path / "g.json").write_text(json.dumps(meta))
        with pytest.raises(ValueError, match="format_version"):
            load_graph(tmp_path / "g")

    def test_legacy_file_without_version_accepted(self, tiny_dataset,
                                                  tmp_path):
        save_graph(tiny_dataset.graph, tmp_path / "g")
        meta = json.loads((tmp_path / "g.json").read_text())
        del meta["format_version"]  # files written before versioning
        (tmp_path / "g.json").write_text(json.dumps(meta))
        load_graph(tmp_path / "g")  # must not raise


# ----------------------------------------------------------------------
# CATE-HGN roundtrip
# ----------------------------------------------------------------------
class TestCATEHGNRoundtrip:
    def test_predictions_bitwise_identical(self, fitted_cate, tmp_path):
        reference = fitted_cate.predict()
        path = fitted_cate.save_checkpoint(tmp_path / "model")
        restored = restore_catehgn(path)
        assert np.array_equal(reference, restored.predict_papers())

    def test_restored_carries_analysis_state(self, fitted_cate, tmp_path):
        path = fitted_cate.save_checkpoint(tmp_path / "model")
        restored = restore_catehgn(path)
        assert restored.term_sets == fitted_cate.term_sets
        assert restored.label_std == fitted_cate._label_std
        assert restored.embeddings is not None
        assert restored.graph.total_edges == fitted_cate._graph.total_edges

    def test_unfitted_estimator_rejected(self, tmp_path):
        with pytest.raises(RuntimeError, match="fit"):
            CATEHGN().save_checkpoint(tmp_path / "nope")

    def test_wrong_kind_rejected(self, fitted_cate, tiny_dataset, tmp_path):
        path = fitted_cate.save_checkpoint(tmp_path / "model")
        with pytest.raises(ValueError, match="kind"):
            load_gnn_baseline(path, tiny_dataset)


# ----------------------------------------------------------------------
# GNN-baseline roundtrips (topology replayed from the dataset)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("cls,kwargs", [
    (RGCN, {"layers": 2}),
    (GAT, {"heads": 2, "layers": 2}),
    (HAN, {"heads": 2, "max_pairs": 5000}),
])
def test_baseline_roundtrip_bitwise(cls, kwargs, tiny_dataset, tmp_path):
    est = cls(GNNTrainConfig(dim=16, epochs=4, seed=0), **kwargs)
    est.fit(tiny_dataset)
    reference = est.predict()
    path = save_gnn_baseline(est, tmp_path / cls.__name__)
    restored = load_gnn_baseline(path, tiny_dataset)
    assert type(restored) is cls
    assert np.array_equal(reference, restored.predict())
    # Constructor kwargs survived the trip.
    for name, value in kwargs.items():
        assert getattr(restored, name) == value
