"""Unit tests for the synthetic DBLP world and dataset builders."""

import numpy as np
import pytest

from repro.data import (
    DOMAIN_NAMES,
    TEST_FROM,
    TRAIN_BEFORE,
    VAL_YEAR,
    WorldConfig,
    generate_world,
    load_graph,
    make_dblp_full,
    make_dblp_random,
    make_dblp_single,
    save_graph,
    temporal_split,
)
from repro.hetnet import AUTHOR, PAPER, TERM, VENUE

from .conftest import TINY_DOMAINS, tiny_config


class TestGenerator:
    def test_world_sizes(self, tiny_world):
        cfg = tiny_world.config
        assert len(tiny_world.papers) == cfg.num_papers
        assert len(tiny_world.authors) == cfg.num_authors
        assert len(tiny_world.venues) == cfg.venues_per_domain * len(TINY_DOMAINS)

    def test_deterministic_given_seed(self):
        w1 = generate_world(tiny_config())
        w2 = generate_world(tiny_config())
        assert [p.title for p in w1.papers] == [p.title for p in w2.papers]
        assert np.allclose(w1.labels(), w2.labels())

    def test_labels_positive(self, tiny_world):
        assert np.all(tiny_world.labels() > 0)

    def test_years_sorted_within_range(self, tiny_world):
        years = tiny_world.years()
        cfg = tiny_world.config
        assert np.all(np.diff(years) >= 0)
        assert years.min() >= cfg.year_min and years.max() <= cfg.year_max

    def test_references_strictly_older(self, tiny_world):
        years = tiny_world.years()
        for i, paper in enumerate(tiny_world.papers):
            for ref in paper.references:
                assert years[ref] < paper.year

    def test_author_prestige_highest_in_primary_domain_on_average(self, tiny_world):
        primary = np.array([a.prestige[a.primary_domain]
                            for a in tiny_world.authors])
        off = np.array([np.delete(a.prestige, a.primary_domain).mean()
                        for a in tiny_world.authors])
        assert primary.mean() > off.mean()

    def test_impact_increases_with_author_prestige(self, tiny_world):
        """The planted signal: prestige correlates with labels."""
        world = tiny_world
        prestige = np.array([
            np.mean([world.authors[a].prestige[p.domain] for a in p.author_ids])
            for p in world.papers
        ])
        corr = np.corrcoef(prestige, world.labels())[0, 1]
        assert corr > 0.3

    def test_quality_terms_per_domain(self, tiny_world):
        data_terms = tiny_world.quality_terms(0)
        assert "mining" in data_terms
        assert "data" in data_terms  # the anchor name itself
        assert "kernel" not in data_terms

    def test_generic_terms_have_no_domain(self, tiny_world):
        assert tiny_world.term_truth["novel"] == (-1, 0.0)

    def test_keywords_are_noisy_subset(self, tiny_world):
        # Keywords mostly overlap titles but include injected noise.
        overlap, noise = 0, 0
        for p in tiny_world.papers:
            for k in p.keywords:
                if k in p.title:
                    overlap += 1
                else:
                    noise += 1
        assert overlap > 0 and noise > 0

    def test_domain_names_default(self):
        assert len(DOMAIN_NAMES) == 9


class TestSplit:
    def test_temporal_split_boundaries(self):
        years = np.array([2004, 2013, 2014, 2015, 2020])
        train, val, test = temporal_split(years)
        assert list(train) == [0, 1]
        assert list(val) == [2]
        assert list(test) == [3, 4]

    def test_split_constants(self):
        assert TRAIN_BEFORE == 2014 and VAL_YEAR == 2014 and TEST_FROM == 2015

    def test_splits_disjoint_and_partition(self, tiny_dataset):
        ds = tiny_dataset
        all_idx = np.concatenate([ds.train_idx, ds.val_idx, ds.test_idx])
        assert len(np.unique(all_idx)) == len(all_idx) == ds.num_papers

    def test_early_stopping_split_properties(self, tiny_dataset):
        fit, stop = tiny_dataset.early_stopping_split()
        years = tiny_dataset.graph.get_attr(PAPER, "year")
        assert np.all(years[fit] < TRAIN_BEFORE - 2)
        assert len(np.intersect1d(fit, stop)) == 0
        assert np.all(years[stop] <= VAL_YEAR)


class TestDatasets:
    def test_full_graph_schema_complete(self, tiny_dataset):
        graph = tiny_dataset.graph
        assert graph.num_nodes[PAPER] == len(tiny_dataset.world.papers)
        for key in [(PAPER, "cites", PAPER), (PAPER, "written_by", AUTHOR),
                    (AUTHOR, "writes", PAPER), (PAPER, "published_in", VENUE),
                    (VENUE, "publishes", PAPER), (PAPER, "mentions", TERM),
                    (TERM, "mentioned_by", PAPER)]:
            assert key in graph.edges

    def test_bidirectional_edges_mirror(self, tiny_dataset):
        graph = tiny_dataset.graph
        fwd = graph.edges[(PAPER, "written_by", AUTHOR)]
        bwd = graph.edges[(AUTHOR, "writes", PAPER)]
        assert set(zip(fwd.src, fwd.dst)) == set(zip(bwd.dst, bwd.src))

    def test_cites_direction_avoids_leakage(self, tiny_dataset):
        """cites edges must run cited(old) -> citing(new)."""
        graph = tiny_dataset.graph
        years = graph.get_attr(PAPER, "year")
        cites = graph.edges[(PAPER, "cites", PAPER)]
        assert np.all(years[cites.src] < years[cites.dst])

    def test_features_attached_everywhere(self, tiny_dataset):
        graph = tiny_dataset.graph
        for t in (PAPER, AUTHOR, VENUE, TERM):
            assert t in graph.node_features
            assert np.all(np.isfinite(graph.node_features[t]))

    def test_labels_match_attr(self, tiny_dataset):
        graph_labels = tiny_dataset.graph.get_attr(PAPER, "label")
        assert np.allclose(graph_labels, tiny_dataset.labels)

    def test_random_keeps_counts_rewires_targets(self, tiny_dataset,
                                                 tiny_random_dataset):
        full = tiny_dataset.graph.edges[(PAPER, "mentions", TERM)]
        rnd = tiny_random_dataset.graph.edges[(PAPER, "mentions", TERM)]
        assert full.num_edges == rnd.num_edges
        assert np.array_equal(full.src, rnd.src)  # same papers, same counts
        assert not np.array_equal(full.dst, rnd.dst)  # rewired targets

    def test_random_shares_text_and_labels(self, tiny_dataset,
                                           tiny_random_dataset):
        assert np.allclose(tiny_dataset.labels, tiny_random_dataset.labels)
        assert tiny_dataset.text is tiny_random_dataset.text

    def test_single_restricted_to_data_venues(self, tiny_single_dataset):
        ds = tiny_single_dataset
        for paper in ds.world.papers:
            assert ds.world.venues[paper.venue_id].domain == 0

    def test_single_references_remapped(self, tiny_single_dataset):
        n = len(tiny_single_dataset.world.papers)
        for paper in tiny_single_dataset.world.papers:
            for ref in paper.references:
                assert 0 <= ref < n
        tiny_single_dataset.graph.validate()

    def test_single_smaller_than_full(self, tiny_dataset, tiny_single_dataset):
        assert (tiny_single_dataset.num_papers < tiny_dataset.num_papers)

    def test_statistics_table1_shape(self, tiny_dataset):
        stats = tiny_dataset.statistics()
        assert set(stats) == {"#paper", "#author", "#venue", "#term", "#links"}


class TestIO:
    def test_graph_roundtrip(self, tiny_dataset, tmp_path):
        path = tmp_path / "graph"
        save_graph(tiny_dataset.graph, path)
        loaded = load_graph(path)
        assert loaded.num_nodes == tiny_dataset.graph.num_nodes
        assert loaded.total_edges == tiny_dataset.graph.total_edges
        for t, feats in tiny_dataset.graph.node_features.items():
            assert np.allclose(loaded.node_features[t], feats)
        assert np.allclose(loaded.get_attr(PAPER, "label"),
                           tiny_dataset.labels)
        assert loaded.node_names[TERM] == tiny_dataset.graph.node_names[TERM]
