"""Integration tests: the Algorithm-1 trainer end to end (tiny budgets)."""

import numpy as np
import pytest

from repro.core import CATEHGN, CATEHGNConfig
from repro.eval import rmse
from repro.hetnet import AUTHOR, PAPER, TERM, VENUE


def quick_config(**overrides) -> CATEHGNConfig:
    params = dict(dim=8, attention_heads=2, num_clusters=4, kappa=10,
                  outer_iters=3, mini_iters=2, center_iters=1,
                  lr=0.02, patience=3, refine_every=1, seed=0)
    params.update(overrides)
    return CATEHGNConfig(**params)


@pytest.fixture(scope="module")
def fitted(tiny_dataset):
    return CATEHGN(quick_config()).fit(tiny_dataset)


class TestTrainer:
    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            CATEHGN(quick_config()).predict()

    def test_fit_returns_self_and_history(self, fitted, tiny_dataset):
        assert fitted.history.val_rmse
        assert fitted.history.best_iteration >= 0
        assert len(fitted.history.train_loss) == len(fitted.history.val_rmse)

    def test_predictions_cover_all_papers_nonnegative(self, fitted,
                                                      tiny_dataset):
        preds = fitted.predict()
        assert preds.shape == (tiny_dataset.num_papers,)
        assert np.all(preds >= 0)
        assert np.all(np.isfinite(preds))

    def test_beats_constant_baseline_on_train(self, fitted, tiny_dataset):
        preds = fitted.predict()
        y = tiny_dataset.labels
        tr = tiny_dataset.train_idx
        constant = rmse(y[tr], np.full(len(tr), y[tr].mean()))
        assert rmse(y[tr], preds[tr]) < constant * 1.2

    def test_term_history_tracked(self, fitted):
        assert fitted.term_history
        assert fitted.term_sets is not None

    def test_cluster_assignments_shapes(self, fitted, tiny_dataset):
        assignments = fitted.cluster_assignments()
        for t in (PAPER, AUTHOR, VENUE, TERM):
            assert t in assignments
        assert assignments[PAPER].shape == (tiny_dataset.num_papers,)
        assert assignments[PAPER].max() < 4

    def test_soft_memberships_normalized(self, fitted):
        memberships = fitted.soft_memberships()
        for t, q in memberships.items():
            assert np.allclose(q.sum(axis=1), 1.0)

    def test_node_impacts_all_types(self, fitted, tiny_dataset):
        for t in (PAPER, AUTHOR, VENUE, TERM):
            impacts = fitted.node_impacts(t)
            assert np.all(np.isfinite(impacts))
        by_cluster = fitted.node_impacts(AUTHOR, cluster=0)
        assert np.isfinite(by_cluster).all()

    def test_dataset_graph_not_mutated(self, tiny_dataset):
        before = tiny_dataset.graph.num_nodes[TERM]
        CATEHGN(quick_config(outer_iters=1)).fit(tiny_dataset)
        assert tiny_dataset.graph.num_nodes[TERM] == before

    def test_reproducible_given_seed(self, tiny_dataset):
        p1 = CATEHGN(quick_config(outer_iters=1)).fit(tiny_dataset).predict()
        p2 = CATEHGN(quick_config(outer_iters=1)).fit(tiny_dataset).predict()
        assert np.allclose(p1, p2)


class TestVariants:
    def test_hgn_variant_has_no_ca_extras(self, tiny_dataset):
        model = CATEHGN(quick_config(use_ca=False, use_te=False,
                                     outer_iters=1)).fit(tiny_dataset)
        with pytest.raises(RuntimeError):
            model.cluster_assignments()
        assert model.term_sets is None

    def test_ca_hgn_variant(self, tiny_dataset):
        model = CATEHGN(quick_config(use_te=False,
                                     outer_iters=1)).fit(tiny_dataset)
        assert model.term_sets is None
        assert model.cluster_assignments()[PAPER].shape[0] > 0

    def test_te_rebuilds_terms_from_text(self, tiny_dataset, fitted):
        # TE ignores the dataset's keyword-derived terms entirely.
        mined = set(fitted._graph.node_names[TERM])
        assert mined  # non-empty
        in_vocab = [t in tiny_dataset.text.corpus.vocabulary for t in mined]
        assert all(in_vocab)

    def test_te_immune_to_term_randomization(self, tiny_dataset,
                                             tiny_random_dataset):
        """The Table-II DBLP-random headline: CATE-HGN rebuilds its own
        term nodes, so rewired keyword links change nothing."""
        cfg = quick_config(outer_iters=2)
        p_full = CATEHGN(cfg).fit(tiny_dataset).predict()
        p_rand = CATEHGN(cfg).fit(tiny_random_dataset).predict()
        assert np.allclose(p_full, p_rand)

    def test_ablation_flags_change_results(self, tiny_dataset):
        base = CATEHGN(quick_config(outer_iters=1)).fit(tiny_dataset).predict()
        for flag in ("use_mi", "use_attention"):
            variant = CATEHGN(quick_config(outer_iters=1, **{flag: False}))
            preds = variant.fit(tiny_dataset).predict()
            assert not np.allclose(preds, base), flag

    def test_self_training_moves_centers(self, tiny_dataset):
        on = CATEHGN(quick_config(outer_iters=1, use_te=False))
        off = CATEHGN(quick_config(outer_iters=1, use_te=False,
                                   use_self_training=False,
                                   use_consistency=False,
                                   use_disparity=False))
        on.fit(tiny_dataset)
        off.fit(tiny_dataset)
        c_on = on.model.ca.centers(0).data
        c_off = off.model.ca.centers(0).data
        assert not np.allclose(c_on, c_off)

    def test_disparity_loss_spreads_centers(self, tiny_dataset):
        near = CATEHGN(quick_config(outer_iters=2, lambda_dis=0.0,
                                    use_te=False)).fit(tiny_dataset)
        far = CATEHGN(quick_config(outer_iters=2, lambda_dis=5.0,
                                   use_te=False)).fit(tiny_dataset)

        def spread(model):
            centers = model.model.ca.centers(model.config.num_layers).data
            diffs = centers[:, None, :] - centers[None, :, :]
            return float((diffs**2).sum())

        assert spread(far) > spread(near)

    def test_compositions_all_train(self, tiny_dataset):
        for comp in ("sub", "mult", "corr"):
            model = CATEHGN(quick_config(outer_iters=1, composition=comp))
            preds = model.fit(tiny_dataset).predict()
            assert np.all(np.isfinite(preds))

    def test_sampled_minibatch_training(self, tiny_dataset):
        model = CATEHGN(quick_config(outer_iters=1, use_te=False,
                                     use_ca=False),
                        sample_batches=True, batch_size=16, fanout=5)
        preds = model.fit(tiny_dataset).predict()
        assert np.all(np.isfinite(preds))

    def test_label_inputs_off(self, tiny_dataset):
        model = CATEHGN(quick_config(outer_iters=1, use_label_inputs=False))
        preds = model.fit(tiny_dataset).predict()
        assert np.all(np.isfinite(preds))

    def test_single_domain_dataset_trains(self, tiny_single_dataset):
        model = CATEHGN(quick_config(outer_iters=1))
        preds = model.fit(tiny_single_dataset).predict()
        assert preds.shape == (tiny_single_dataset.num_papers,)


class TestDebugAnomaly:
    """config.debug_anomaly wires the tape sanitizer into every step."""

    def test_clean_training_passes_under_sanitizer(self, tiny_dataset):
        from repro.tensor import Tensor

        make_before = Tensor.__dict__["_make"]
        model = CATEHGN(quick_config(outer_iters=1, debug_anomaly=True))
        preds = model.fit(tiny_dataset).predict()
        assert np.all(np.isfinite(preds))
        # Instrumentation must be fully unwound after fit().
        assert Tensor.__dict__["_make"] is make_before

    def test_matches_uninstrumented_run(self, tiny_dataset):
        p_plain = CATEHGN(quick_config(outer_iters=1)).fit(
            tiny_dataset).predict()
        p_debug = CATEHGN(quick_config(outer_iters=1,
                                       debug_anomaly=True)).fit(
            tiny_dataset).predict()
        assert np.allclose(p_plain, p_debug)

    def test_baseline_scaffold_supports_sanitizer(self, tiny_dataset):
        from repro.baselines.gnn_common import GNNTrainConfig
        from repro.baselines.rgcn import RGCN
        from repro.tensor import Tensor

        make_before = Tensor.__dict__["_make"]
        cfg = GNNTrainConfig(dim=8, epochs=3, debug_anomaly=True)
        preds = RGCN(cfg, layers=1).fit(tiny_dataset).predict()
        assert np.all(np.isfinite(preds))
        assert Tensor.__dict__["_make"] is make_before
