"""Tests for the dynamic citation extension (Section III-G future work)."""

import numpy as np
import pytest

from repro.core.dynamic import (
    AgingProfile,
    DynamicCitationModel,
    empirical_citation_ages,
)


class _ConstantBase:
    """Static-estimator stub with a fixed rate prediction."""

    def __init__(self, rates):
        self.rates = np.asarray(rates, dtype=np.float64)

    def predict(self):
        return self.rates


class TestAgingProfile:
    def test_normalizes(self):
        profile = AgingProfile(np.array([2.0, 1.0, 1.0]))
        assert np.isclose(profile.weights.sum(), 1.0)
        assert profile.horizon == 3

    def test_rejects_bad_weights(self):
        with pytest.raises(ValueError):
            AgingProfile(np.array([]))
        with pytest.raises(ValueError):
            AgingProfile(np.array([1.0, -1.0]))
        with pytest.raises(ValueError):
            AgingProfile(np.zeros(3))

    def test_fit_from_dataset(self, tiny_dataset):
        profile = AgingProfile.fit(tiny_dataset, horizon=5)
        assert profile.horizon == 5
        assert np.isclose(profile.weights.sum(), 1.0)
        assert np.all(profile.weights > 0)  # Laplace smoothing

    def test_spread_preserves_mean_rate(self):
        profile = AgingProfile(np.array([3.0, 2.0, 1.0]))
        rates = np.array([1.0, 4.0])
        trajectories = profile.spread(rates)
        assert trajectories.shape == (2, 3)
        assert np.allclose(trajectories.mean(axis=1), rates)

    def test_spread_shape_follows_profile(self):
        profile = AgingProfile(np.array([1.0, 3.0, 1.0]))
        traj = profile.spread(np.array([2.0]))[0]
        assert traj[1] == traj.max()  # peak year preserved


class TestEmpiricalAges:
    def test_ages_positive(self, tiny_dataset):
        ages = empirical_citation_ages(tiny_dataset, train_only=False)
        assert np.all(ages >= 1)

    def test_train_only_excludes_test_citations(self, tiny_dataset):
        all_ages = empirical_citation_ages(tiny_dataset, train_only=False)
        train_ages = empirical_citation_ages(tiny_dataset, train_only=True)
        assert len(train_ages) <= len(all_ages)


class TestDynamicModel:
    def test_predict_before_fit_raises(self):
        model = DynamicCitationModel(_ConstantBase([1.0]))
        with pytest.raises(RuntimeError):
            model.predict_trajectories()

    def test_trajectories_shape_and_consistency(self, tiny_dataset):
        rates = np.linspace(0.5, 3.0, tiny_dataset.num_papers)
        model = DynamicCitationModel(_ConstantBase(rates), horizon=4)
        model.fit(tiny_dataset)
        trajectories = model.predict_trajectories()
        assert trajectories.shape == (tiny_dataset.num_papers, 4)
        assert np.all(trajectories >= 0)
        assert np.allclose(trajectories.mean(axis=1), rates)

    def test_observed_trajectories_match_link_counts(self, tiny_dataset):
        observed = DynamicCitationModel.observed_trajectories(tiny_dataset,
                                                              horizon=8)
        graph = tiny_dataset.graph
        cites = graph.edges[("paper", "cites", "paper")]
        years = graph.get_attr("paper", "year")
        in_horizon = ((years[cites.dst] - years[cites.src] >= 1)
                      & (years[cites.dst] - years[cites.src] <= 8))
        assert observed.sum() == in_horizon.sum()

    def test_end_to_end_with_cate_hgn(self, tiny_dataset):
        from repro.core import CATEHGN, CATEHGNConfig

        base = CATEHGN(CATEHGNConfig(dim=8, attention_heads=2,
                                     num_clusters=4, kappa=10,
                                     outer_iters=1, mini_iters=1, seed=0))
        model = DynamicCitationModel(base, horizon=5)
        model.fit(tiny_dataset, fit_base=True)
        trajectories = model.predict_trajectories()
        assert trajectories.shape == (tiny_dataset.num_papers, 5)
        assert np.all(np.isfinite(trajectories))
