"""Tests for the repo-specific AST lint (rules R001-R005).

Seeded fixture files containing deliberate violations are written to
``tmp_path`` and must each be flagged at the right line; clean idiomatic
code must pass untouched.
"""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.lint import RULES, Violation, lint_paths, lint_sources, main

# ----------------------------------------------------------------------
# Fixture sources
# ----------------------------------------------------------------------
R001_BAD = '''\
import numpy as np

def poke(param, update):
    param.data = param.data - update          # line 4: rebinding .data

def poke_inplace(param, update):
    param.data[0] = 0.0                       # line 7: slice store

def poke_aug(param, update):
    param.data += update                      # line 10: augmented
'''

R001_SUPPRESSED = '''\
def intentional(param, new):
    param.data = new  # repro-lint: disable=R001
'''

R002_BAD = '''\
import numpy as np

def sample():
    a = np.random.rand(3)                     # line 4
    b = np.random.normal(size=3)              # line 5
    np.random.seed(0)                         # line 6
    return a + b
'''

R002_CLEAN = '''\
import numpy as np

def sample(seed: int):
    rng = np.random.default_rng(seed)
    ss = np.random.SeedSequence(seed)
    gen = np.random.Generator(np.random.PCG64(seed))
    return rng.normal(size=3), ss, gen
'''

R003_BAD = '''\
from repro.nn import Module

class Headless(Module):                       # line 3: no forward
    def __init__(self):
        super().__init__()

class StillHeadless(Headless):                # line 7: inherits nothing
    pass
'''

R003_CLEAN = '''\
from repro.nn import Module

class Base(Module):
    def forward(self, x):
        return x

class Derived(Base):                          # forward inherited: fine
    pass

class NotAModule:                             # unrelated class: fine
    pass
'''

R004_BAD = '''\
import numpy as np
from repro.tensor import Tensor

def cut_op(x):
    out = x.data * 2.0
    return Tensor._make(out, (x,), None)      # line 6: backward=None

def dead_op(x):                               # line 8: dead closure below
    out = np.tanh(x.data)

    def backward(grad):
        x._accumulate(grad)

    return Tensor._make(out, (x,), lambda g: None)
'''

R004_CLEAN = '''\
import numpy as np
from repro.tensor import Tensor

def good_op(x):
    out = x.data * 2.0

    def backward(grad):
        x._accumulate(grad * 2.0)

    return Tensor._make(out, (x,), backward)

def wrapper_op(x, backward):
    # forwarding a caller-supplied closure is fine
    return Tensor._make(x.data, (x,), backward)
'''


R005_BAD = '''\
def swallow():
    try:
        risky()
    except Exception:                         # line 4: silent pass
        pass

def swallow_ellipsis():
    try:
        risky()
    except (OSError, ValueError):             # line 10: silent ellipsis
        ...
'''

R005_SUPPRESSED = '''\
def intentional():
    try:
        risky()
    except KeyboardInterrupt:  # noqa: R005 — documented shutdown path
        pass
'''

R005_FOREIGN_NOQA = '''\
def not_ours():
    try:
        risky()
    except Exception:  # noqa: BLE001
        pass
'''

R005_CLEAN = '''\
import logging

def handled():
    try:
        risky()
    except OSError as exc:
        logging.warning("risky failed: %s", exc)

def reraised():
    try:
        risky()
    except ValueError:
        raise
'''


def rules_of(violations):
    return sorted({v.rule for v in violations})


def lint_str(source, path="fixture.py", **kwargs):
    violations, classes = lint_sources(source, path, **kwargs)
    return violations


# ----------------------------------------------------------------------
# R001
# ----------------------------------------------------------------------
class TestR001:
    def test_flags_all_mutation_forms(self):
        violations = lint_str(R001_BAD)
        r001 = [v for v in violations if v.rule == "R001"]
        assert [v.line for v in r001] == [4, 7, 10]

    def test_whitelisted_module_passes(self):
        violations = lint_str(R001_BAD, path="src/repro/nn/optim.py")
        assert not [v for v in violations if v.rule == "R001"]

    def test_extra_whitelist(self):
        violations = lint_str(
            R001_BAD, path="pkg/custom.py", extra_data_whitelist=["pkg/custom.py"]
        )
        assert not [v for v in violations if v.rule == "R001"]

    def test_inline_suppression(self):
        assert lint_str(R001_SUPPRESSED) == []


R002_IMPORT_FORMS = '''\
from numpy.random import seed, rand               # line 1: both names
from numpy.random import default_rng              # allowed constructor
from numpy import random                          # alias root
import numpy.random as npr                        # alias root

def sample():
    seed(0)
    random.shuffle([1, 2])                        # line 8
    npr.seed(1)                                   # line 9
    return default_rng(0).normal(size=3), rand(2)
'''

R002_STDLIB_RANDOM_CLEAN = '''\
import random

def pick(items):
    # stdlib random is a different rule's business, not R002.
    return random.choice(items)
'''


# ----------------------------------------------------------------------
# R002
# ----------------------------------------------------------------------
class TestR002:
    def test_flags_global_rng(self):
        r002 = [v for v in lint_str(R002_BAD) if v.rule == "R002"]
        assert [v.line for v in r002] == [4, 5, 6]
        assert all("Generator" in v.message for v in r002)

    def test_generator_construction_allowed(self):
        assert lint_str(R002_CLEAN) == []

    def test_legacy_seeding_attribute_forms(self):
        src = ("import numpy as np\n"
               "np.random.seed(7)\n"
               "state = np.random.RandomState(7)\n")
        r002 = [v for v in lint_str(src) if v.rule == "R002"]
        assert [v.line for v in r002] == [2, 3]

    def test_import_forms_flagged(self):
        r002 = [v for v in lint_str(R002_IMPORT_FORMS) if v.rule == "R002"]
        # line 1 twice (seed + rand bindings), then the aliased uses.
        assert sorted(v.line for v in r002) == [1, 1, 8, 9]

    def test_stdlib_random_not_confused(self):
        assert lint_str(R002_STDLIB_RANDOM_CLEAN) == []


# ----------------------------------------------------------------------
# R003 (project-wide resolution via lint_paths)
# ----------------------------------------------------------------------
class TestR003:
    def test_flags_forwardless_module(self, tmp_path):
        f = tmp_path / "bad_modules.py"
        f.write_text(R003_BAD)
        violations = lint_paths([str(tmp_path)])
        r003 = [v for v in violations if v.rule == "R003"]
        assert sorted(v.line for v in r003) == [3, 7]
        assert any("Headless" in v.message for v in r003)

    def test_inherited_forward_ok(self, tmp_path):
        (tmp_path / "good_modules.py").write_text(R003_CLEAN)
        assert lint_paths([str(tmp_path)]) == []

    def test_cross_file_base_resolution(self, tmp_path):
        (tmp_path / "base.py").write_text(
            "from repro.nn import Module\n\n"
            "class SharedBase(Module):\n"
            "    def forward(self, x):\n"
            "        return x\n"
        )
        (tmp_path / "derived.py").write_text(
            "from .base import SharedBase\n\n"
            "class Impl(SharedBase):\n"
            "    pass\n"
        )
        assert lint_paths([str(tmp_path)]) == []


# ----------------------------------------------------------------------
# R004
# ----------------------------------------------------------------------
class TestR004:
    def test_flags_missing_and_dead_backward(self):
        r004 = [v for v in lint_str(R004_BAD) if v.rule == "R004"]
        lines = sorted(v.line for v in r004)
        assert 6 in lines          # backward=None
        assert 8 in lines          # dead closure (enclosing def line)

    def test_clean_ops_pass(self):
        assert lint_str(R004_CLEAN) == []

    def test_engine_sources_pass(self):
        # The real engine is the canonical clean corpus for this rule.
        for mod in ("tensor.py", "ops.py"):
            src = Path("src/repro/tensor") / mod
            violations, _ = lint_sources(src.read_text(), str(src))
            assert violations == []


# ----------------------------------------------------------------------
# R005
# ----------------------------------------------------------------------
class TestR005:
    def test_flags_pass_and_ellipsis_bodies(self):
        r005 = [v for v in lint_str(R005_BAD) if v.rule == "R005"]
        assert sorted(v.line for v in r005) == [4, 10]
        assert all("swallows the exception" in v.message for v in r005)

    def test_noqa_r005_suppresses(self):
        assert lint_str(R005_SUPPRESSED) == []

    def test_foreign_noqa_does_not_suppress(self):
        r005 = [v for v in lint_str(R005_FOREIGN_NOQA) if v.rule == "R005"]
        assert [v.line for v in r005] == [4]

    def test_handlers_with_real_bodies_pass(self):
        assert lint_str(R005_CLEAN) == []


# ----------------------------------------------------------------------
# R006
# ----------------------------------------------------------------------
R006_BAD = '''\
def validate(ids, limit):
    assert len(ids) > 0, "ids must be non-empty"
    assert max(ids) < limit
    return ids
'''

R006_SUPPRESSED = '''\
def internal(x):
    assert x.flags.c_contiguous  # noqa: R006 — internal invariant
    return x
'''


class TestR006:
    def test_flags_bare_asserts_in_library_scope(self):
        r006 = [v for v in lint_str(R006_BAD, path="src/repro/data/io.py")
                if v.rule == "R006"]
        assert sorted(v.line for v in r006) == [2, 3]
        assert all("python -O" in v.message for v in r006)

    def test_out_of_scope_paths_untouched(self):
        """pytest-style asserts in tests/benchmarks/examples are fine."""
        for path in ("tests/test_x.py", "benchmarks/perf.py",
                     "examples/demo.py", "fixture.py"):
            assert [v for v in lint_str(R006_BAD, path=path)
                    if v.rule == "R006"] == []

    def test_noqa_r006_suppresses(self):
        violations = lint_str(R006_SUPPRESSED, path="src/repro/x.py")
        assert [v for v in violations if v.rule == "R006"] == []

    def test_select_r006_only(self, tmp_path):
        pkg = tmp_path / "src" / "repro"
        pkg.mkdir(parents=True)
        f = pkg / "mod.py"
        f.write_text(R006_BAD)
        violations = lint_paths([str(f)], rules={"R006"})
        assert rules_of(violations) == ["R006"]


# ----------------------------------------------------------------------
# Driver / CLI
# ----------------------------------------------------------------------
class TestDriver:
    def test_exit_codes(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(R002_BAD)
        good = tmp_path / "good.py"
        good.write_text(R002_CLEAN)
        assert main([str(good)]) == 0
        assert main([str(bad)]) != 0

    def test_select_subset(self, tmp_path):
        f = tmp_path / "mixed.py"
        f.write_text(R001_BAD + "\n" + R002_BAD.replace("import numpy as np\n", ""))
        only_r002 = lint_paths([str(f)], rules={"R002"})
        assert rules_of(only_r002) == ["R002"]

    def test_syntax_error_reported_not_crash(self, tmp_path):
        f = tmp_path / "broken.py"
        f.write_text("def f(:\n")
        violations = lint_paths([str(f)])
        assert violations and violations[0].rule == "R000"

    def test_rule_catalogue_complete(self):
        assert set(RULES) == {"R001", "R002", "R003", "R004", "R005",
                              "R006"}

    def test_module_entrypoint_runs(self, tmp_path):
        """`python -m repro.analysis.lint <file>` works and sets exit code."""
        bad = tmp_path / "bad.py"
        bad.write_text(R001_BAD)
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis.lint", str(bad)],
            capture_output=True, text=True,
        )
        assert proc.returncode == 1
        assert "R001" in proc.stdout

    def test_violation_str_is_clickable(self):
        v = Violation("R001", "src/x.py", 12, "boom")
        assert str(v).startswith("src/x.py:12: R001")

    def test_ignore_flag_skips_rules(self, tmp_path, capsys):
        f = tmp_path / "mixed.py"
        f.write_text(R001_BAD + "\n" + R002_BAD)
        assert main([str(f), "--ignore", "R001,R002"]) == 0
        assert main([str(f), "--ignore", "R001"]) == 1
        out = capsys.readouterr().out
        assert "R002" in out and "R001" not in out

    def test_ignore_unknown_rule_errors(self, tmp_path):
        f = tmp_path / "x.py"
        f.write_text("x = 1\n")
        with pytest.raises(SystemExit):
            main([str(f), "--ignore", "R999"])

    def test_json_format(self, tmp_path, capsys):
        import json

        f = tmp_path / "bad.py"
        f.write_text(R002_BAD)
        assert main([str(f), "--format", "json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["count"] == 3
        first = report["violations"][0]
        assert first["rule"] == "R002"
        assert first["path"] == str(f)
        assert first["line"] == 4
        assert "Generator" in first["message"]

    def test_json_format_clean(self, tmp_path, capsys):
        import json

        f = tmp_path / "good.py"
        f.write_text(R002_CLEAN)
        assert main([str(f), "--format", "json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report == {"count": 0, "violations": []}
