"""Unit tests for the text substrate: vocab, TF-IDF, PPMI, embeddings, MLM."""

import numpy as np
import pytest
from scipy import sparse

from repro.text import (
    Corpus,
    DistributionalMLM,
    Vocabulary,
    WordEmbeddings,
    cooccurrence_counts,
    document_frequencies,
    ppmi,
    tfidf_matrix_entries,
    tokenize,
)


class TestVocabulary:
    def test_tokenize_lowercases_and_splits(self):
        assert tokenize("Graph Neural-Networks 2020!") == [
            "graph", "neural-networks"
        ]

    def test_tokenize_keeps_hyphens_and_digits_inside(self):
        assert tokenize("peer-to-peer x86abc") == ["peer-to-peer", "x86abc"]

    def test_add_is_idempotent(self):
        vocab = Vocabulary()
        assert vocab.add("graph") == vocab.add("graph") == 0
        assert len(vocab) == 1

    def test_roundtrip_and_contains(self):
        vocab = Vocabulary(["a", "b"])
        assert vocab.token(vocab.id("b")) == "b"
        assert "a" in vocab and "z" not in vocab
        assert vocab.get("z") == -1

    def test_encode_skips_unknown(self):
        vocab = Vocabulary(["a"])
        assert vocab.encode(["a", "z", "a"]) == [0, 0]

    def test_encode_grow(self):
        vocab = Vocabulary()
        assert vocab.encode(["x", "y", "x"], skip_unknown=False) == [0, 1, 0]

    def test_from_documents_min_count(self):
        docs = [["a", "a", "b"], ["a", "c"]]
        vocab = Vocabulary.from_documents(docs, min_count=2)
        assert "a" in vocab and "b" not in vocab

    def test_corpus_from_texts(self):
        corpus = Corpus.from_texts(["graph mining", "graph systems"])
        assert len(corpus) == 2
        assert "graph" in corpus.vocabulary
        encoded = corpus.encoded()
        assert encoded[0][0] == encoded[1][0]  # shared token id


class TestTFIDF:
    def test_document_frequencies(self):
        docs = [[0, 0, 1], [1, 2]]
        df = document_frequencies(docs, 3)
        assert list(df) == [1, 2, 1]

    def test_tfidf_zero_for_ubiquitous_terms(self):
        docs = [[0, 1], [0, 2]]
        papers, tokens, weights = tfidf_matrix_entries(docs, 3)
        assert 0 not in set(tokens)  # token 0 appears everywhere -> idf 0

    def test_tfidf_matches_equation_24(self):
        docs = [[0, 0, 1], [2]]
        papers, tokens, weights = tfidf_matrix_entries(docs, 3)
        entry = {(p, t): w for p, t, w in zip(papers, tokens, weights)}
        # token 0 in doc 0: tf = 2/3, idf = log(2/1).
        assert np.isclose(entry[(0, 0)], (2 / 3) * np.log(2))
        assert np.isclose(entry[(0, 1)], (1 / 3) * np.log(2))
        assert np.isclose(entry[(1, 2)], 1.0 * np.log(2))

    def test_restrict_to_filters_tokens(self):
        docs = [[0, 1, 2]]
        papers, tokens, weights = tfidf_matrix_entries(docs, 3,
                                                       restrict_to=[1])
        assert set(tokens) <= {1}

    def test_empty_documents_skipped(self):
        papers, tokens, weights = tfidf_matrix_entries([[], [0]], 1)
        assert len(papers) == len(tokens) == len(weights)


class TestCooccurrence:
    def test_counts_symmetric(self):
        docs = [[0, 1, 2]]
        counts = cooccurrence_counts(docs, 3, window=8)
        dense = counts.toarray()
        assert np.allclose(dense, dense.T)
        assert dense[0, 1] == 1 and dense[1, 2] == 1

    def test_window_limits_pairs(self):
        docs = [[0, 1, 2]]
        counts = cooccurrence_counts(docs, 3, window=1).toarray()
        assert counts[0, 2] == 0 and counts[0, 1] == 1

    def test_ppmi_nonnegative(self):
        docs = [[0, 1], [0, 1], [2, 3]]
        matrix = ppmi(cooccurrence_counts(docs, 4))
        assert matrix.nnz > 0
        assert np.all(matrix.data >= 0)

    def test_ppmi_empty_counts(self):
        matrix = ppmi(sparse.csr_matrix((3, 3)))
        assert matrix.nnz == 0

    def test_ppmi_higher_for_exclusive_pairs(self):
        # (0,1) always co-occur exclusively; (2, x) co-occurs with everyone.
        docs = [[0, 1]] * 5 + [[2, 3], [2, 4], [2, 5], [3, 4]]
        matrix = ppmi(cooccurrence_counts(docs, 6)).toarray()
        assert matrix[0, 1] > matrix[2, 3]


class TestEmbeddings:
    def test_fit_shapes(self):
        corpus = Corpus.from_texts(["a b c d", "a b e f", "c d e f"])
        emb = WordEmbeddings.fit(corpus.encoded(), corpus.vocabulary, dim=4)
        assert emb.vectors.shape == (len(corpus.vocabulary), 4)
        assert emb.dim == 4

    def test_embed_tokens_normalized(self):
        corpus = Corpus.from_texts(["a b c", "a b d", "c d a"])
        emb = WordEmbeddings.fit(corpus.encoded(), corpus.vocabulary, dim=2)
        vec = emb.embed_tokens(["a", "b"])
        assert np.isclose(np.linalg.norm(vec), 1.0) or np.allclose(vec, 0)

    def test_embed_unknown_tokens_is_zero(self):
        corpus = Corpus.from_texts(["a b", "b c", "c a"])
        emb = WordEmbeddings.fit(corpus.encoded(), corpus.vocabulary, dim=2)
        assert np.allclose(emb.embed_tokens(["zzz"]), 0.0)

    def test_deterministic_given_seed(self):
        corpus = Corpus.from_texts(["a b c", "b c d", "d e a"])
        e1 = WordEmbeddings.fit(corpus.encoded(), corpus.vocabulary, dim=3,
                                seed=5)
        e2 = WordEmbeddings.fit(corpus.encoded(), corpus.vocabulary, dim=3,
                                seed=5)
        assert np.allclose(e1.vectors, e2.vectors)

    def test_cooccurring_words_closer(self, tiny_dataset):
        emb = tiny_dataset.text.embeddings
        # "mining" is a data-domain term; "kernel" a learning-domain term.
        data1, data2 = emb.vector("mining"), emb.vector("query")
        other = emb.vector("kernel")

        def cos(u, v):
            return u @ v / (np.linalg.norm(u) * np.linalg.norm(v) + 1e-12)

        assert cos(data1, data2) > cos(data1, other)

    def test_rows_match_vocabulary_guard(self):
        with pytest.raises(ValueError):
            WordEmbeddings(Vocabulary(["a", "b"]), np.zeros((3, 2)))


class TestMLM:
    def test_mask_distribution_is_probability(self, tiny_dataset):
        mlm = tiny_dataset.text.mlm
        dist = mlm.mask_distribution("data")
        assert np.isclose(dist.sum(), 1.0)
        assert np.all(dist >= 0)

    def test_unknown_token_gives_uniform(self, tiny_dataset):
        mlm = tiny_dataset.text.mlm
        dist = mlm.mask_distribution("qqqqq")
        assert np.allclose(dist, dist[0])

    def test_top_terms_sorted_and_capped(self, tiny_dataset):
        mlm = tiny_dataset.text.mlm
        top = mlm.top_terms("data", 10)
        assert len(top) == 10
        scores = [s for _, s in top]
        assert scores == sorted(scores, reverse=True)

    def test_domain_name_retrieves_domain_terms(self, tiny_dataset):
        """The MLM bootstrap should surface same-domain quality terms."""
        mlm = tiny_dataset.text.mlm
        world = tiny_dataset.world
        top = {t for t, _ in mlm.top_terms("data", 25)}
        data_terms = set(world.quality_terms(0))
        learning_terms = set(world.quality_terms(1))
        assert len(top & data_terms) > len(top & learning_terms)

    def test_word_does_not_predict_itself(self, tiny_dataset):
        mlm = tiny_dataset.text.mlm
        top = [t for t, _ in mlm.top_terms("data", 5)]
        assert "data" not in top
