"""Batch-structure cache: correctness and hit behaviour (DESIGN §10).

Before the cache, ``OneSpaceHGN._layer_forward`` recomputed presence
masks and per-edge-type index structures on every layer of every
forward.  These tests pin the new contract: one
:class:`~repro.hetnet.structure.BatchStructure` build per batch
topology, shared by all layers, all forward passes, and all
label-augmented views — observed through the class-wide ``builds``
counter.
"""

import numpy as np
import pytest

from repro.core import GraphBatch, HGNConfig, OneSpaceHGN
from repro.hetnet.structure import BatchStructure, EdgeStructure


def _batch(dataset, num_labeled=25):
    ids = np.arange(num_labeled, dtype=np.intp)
    return GraphBatch.from_graph(dataset.graph, ids, np.zeros(num_labeled))


# ----------------------------------------------------------------------
# EdgeStructure invariants
# ----------------------------------------------------------------------
def test_edge_structure_arrays():
    src = np.array([4, 0, 2, 3, 1], dtype=np.intp)
    dst = np.array([2, 0, 2, 1, 2], dtype=np.intp)
    es = EdgeStructure(src, dst, num_dst=4)
    assert np.all(np.diff(es.sorted_dst) >= 0)
    np.testing.assert_array_equal(es.counts, [1.0, 1.0, 3.0, 0.0])
    np.testing.assert_array_equal(es.presence, [True, True, True, False])
    # CSR slices partition the sorted edges per destination.
    for v in range(4):
        rows = es.order[es.indptr[v]:es.indptr[v + 1]]
        assert np.all(dst[rows] == v)
    assert es.indptr[-1] == len(dst)


def test_edge_structure_src_view_is_cached_and_src_grouped():
    src = np.array([4, 0, 2, 3, 1, 0], dtype=np.intp)
    dst = np.array([2, 0, 2, 1, 2, 3], dtype=np.intp)
    es = EdgeStructure(src, dst, num_dst=4)
    sv = es.src_view(5)
    assert sv is es.src_view(5)  # lazy, built once
    # The view groups edges by src: its indptr covers src ids.
    for u in range(5):
        rows = sv.order[sv.indptr[u]:sv.indptr[u + 1]]
        assert np.all(src[rows] == u)


def test_identity_structure():
    es = EdgeStructure.identity(5)
    np.testing.assert_array_equal(es.src, np.arange(5))
    np.testing.assert_array_equal(es.counts, np.ones(5))
    assert es.presence.all()


# ----------------------------------------------------------------------
# Cache behaviour on GraphBatch
# ----------------------------------------------------------------------
def test_structure_built_once_per_batch(tiny_dataset):
    batch = _batch(tiny_dataset)
    before = BatchStructure.builds
    s1 = batch.structure
    assert BatchStructure.builds == before + 1
    s2 = batch.structure
    assert s2 is s1
    assert BatchStructure.builds == before + 1


def test_label_augmented_views_share_the_cache(tiny_dataset):
    base = _batch(tiny_dataset)
    ids = base.labeled_ids
    view = base.with_label_inputs(ids[:10], np.zeros(10),
                                  ids[10:], np.zeros(15))
    before = BatchStructure.builds
    # Whichever side builds first, both share the same object.
    assert view.structure is base.structure
    assert BatchStructure.builds == before + 1
    # And a view created after the build inherits it for free.
    late = base.with_label_inputs(ids[:5], np.zeros(5), ids[5:], np.zeros(20))
    assert late.structure is base.structure
    assert BatchStructure.builds == before + 1


def test_new_batch_gets_fresh_structure(tiny_dataset):
    """Topology invalidation rule: a new GraphBatch => a new cache."""
    b1 = _batch(tiny_dataset)
    b2 = _batch(tiny_dataset)
    assert b1.structure is not b2.structure


def test_no_rebuild_across_layers_and_forwards(tiny_dataset):
    """The satellite fix: presence masks / index structures are no longer
    recomputed per layer — a multi-layer forward, repeated, costs exactly
    one build."""
    batch = _batch(tiny_dataset)
    config = HGNConfig(dim=16, attention_heads=2, num_layers=3, seed=0)
    feature_dims = {t: batch.features[t].shape[1] for t in batch.node_types}
    net = OneSpaceHGN(config, batch.node_types, feature_dims,
                      list(batch.edges.keys()))
    before = BatchStructure.builds
    for _ in range(3):  # 3 forwards x 3 layers each
        net(batch)
    assert BatchStructure.builds == before + 1


def test_masks_match_presence(tiny_dataset):
    batch = _batch(tiny_dataset)
    structure = batch.structure
    for t in batch.node_types:
        mask = structure.mask[t]
        keys = structure.active_keys[t]
        assert mask.shape == (batch.num_nodes[t], len(keys) + 1)
        for col, key in enumerate(keys):
            np.testing.assert_array_equal(mask[:, col],
                                          structure.edge[key].presence)
        assert mask[:, -1].all()  # self-loop column


def test_self_loop_structures_cached(tiny_dataset):
    structure = _batch(tiny_dataset).structure
    assert structure.self_loop(7) is structure.self_loop(7)
    assert structure.self_loop(7) is not structure.self_loop(8)


# ----------------------------------------------------------------------
# Graph-level sharing across a model roster (share_structure=True)
# ----------------------------------------------------------------------
def test_shared_structure_across_batches_of_one_graph(tiny_dataset):
    """Opt-in graph-level cell: one build serves every batch of a roster."""
    graph = tiny_dataset.graph
    graph._topology_version += 1  # fresh cell (other tests may have warmed it)
    ids = tiny_dataset.train_idx[:5]
    b1 = GraphBatch.from_graph(graph, ids, np.zeros(5), share_structure=True)
    before = BatchStructure.builds
    s1 = b1.structure
    assert BatchStructure.builds == before + 1
    b2 = GraphBatch.from_graph(graph, ids, np.zeros(5), share_structure=True)
    assert b2.structure is s1
    assert BatchStructure.builds == before + 1
    # Default construction still gets its own cache (historical rule).
    b3 = GraphBatch.from_graph(graph, ids, np.zeros(5))
    assert b3.structure is not s1


def test_topology_mutation_invalidates_shared_cell(tiny_dataset):
    graph, _ = tiny_dataset.graph.subgraph(
        {t: np.arange(tiny_dataset.graph.num_nodes[t])
         for t in tiny_dataset.graph.schema.node_types}
    )
    ids = np.array([0], dtype=np.intp)
    b1 = GraphBatch.from_graph(graph, ids, np.zeros(1), share_structure=True)
    s1 = b1.structure
    # Rewriting any edge type (what TE refinement does) bumps the
    # topology version and hands the next batch a fresh cell.
    key = next(iter(graph.edges))
    edge = graph.edges[key]
    graph.set_edges(key, edge.src, edge.dst, edge.weight)
    b2 = GraphBatch.from_graph(graph, ids, np.zeros(1), share_structure=True)
    assert b2.structure is not s1


def test_roster_reuses_one_structure(tiny_dataset):
    """The eval-runner satellite: a roster of estimators trained on one
    dataset triggers exactly one BatchStructure build."""
    from repro.baselines import RGCN
    from repro.baselines.gnn_common import GNNTrainConfig
    from repro.eval.runner import warm_structure_cache

    # Fresh shared cell for this assertion (other tests may have warmed it).
    tiny_dataset.graph._topology_version += 1
    warm_structure_cache(tiny_dataset)
    before = BatchStructure.builds
    for seed in (0, 1):
        RGCN(GNNTrainConfig(dim=8, epochs=2, seed=seed)).fit(tiny_dataset)
    assert BatchStructure.builds == before  # all fits reused the warm cell
