"""Minibatch neighbor-sampled training: resume, guards, memory ceiling.

Companion to ``test_golden_metrics.py::test_golden_minibatch_parity``
(quality) and ``test_sampling_properties.py`` (sampler invariants) —
this file pins the *training-loop* contracts: per-step updates happen,
kill-and-resume replays the exact remaining batch sequence bitwise,
configuration drift across a resume is rejected, and sampling from an
on-disk store never materializes the store into process memory.
"""

import tracemalloc

import numpy as np
import pytest

from repro.core import CATEHGN, CATEHGNConfig
from repro.data import GraphStore, MinibatchSampler, synthesize_store
from repro.hetnet.schema import PAPER
from repro.resilience import CrashInjected, faults


def _cfg(**overrides) -> CATEHGNConfig:
    params = dict(dim=8, num_layers=2, outer_iters=4, mini_iters=2,
                  center_iters=1, kappa=12, num_clusters=4, patience=10,
                  seed=0)
    params.update(overrides)
    return CATEHGNConfig(**params)


def _sampler(**overrides) -> MinibatchSampler:
    params = dict(batch_size=32, fanouts=5, seed=0, record_seeds=True)
    params.update(overrides)
    return MinibatchSampler(**params)


def test_sampled_fit_trains_and_predicts(tiny_dataset):
    sampler = _sampler()
    model = CATEHGN(_cfg()).fit(tiny_dataset, sampler=sampler)
    preds = model.predict(tiny_dataset)
    assert preds.shape == (tiny_dataset.graph.num_nodes[PAPER],)
    assert np.all(np.isfinite(preds))
    # One optimizer step per sampled minibatch: outer_iters * mini_iters.
    assert len(sampler.seed_log) == 4 * 2
    # The loop consumed batches in ItemSampler order over the train set.
    seen = np.sort(np.concatenate(sampler.seed_log))
    assert np.all(np.isin(seen, np.arange(len(tiny_dataset.labels))))


def test_sampled_fit_is_seed_deterministic(tiny_dataset):
    run = lambda: CATEHGN(_cfg()).fit(  # noqa: E731
        tiny_dataset, sampler=_sampler()).predict(tiny_dataset)
    assert np.array_equal(run(), run())


def test_sampled_fit_validate_clean_is_quiet(tiny_dataset):
    """Per-minibatch contracts on clean data: no quarantine events."""
    model = CATEHGN(_cfg()).fit(tiny_dataset, sampler=_sampler(),
                                validate="repair")
    events = [e for e in model.history.events
              if e.get("type") == "quarantine"]
    assert not events


def test_sampled_kill_and_resume_is_bitwise(tiny_dataset, tmp_path):
    """Snapshot mid-epoch; the resumed run must replay the *remaining*
    batch sequence identically and land on bitwise-equal predictions."""
    reference = CATEHGN(_cfg())
    ref_sampler = _sampler()
    reference.fit(tiny_dataset, sampler=ref_sampler)
    ref_pred = reference.predict(tiny_dataset)

    victim = CATEHGN(_cfg())
    victim_sampler = _sampler()
    with pytest.raises(CrashInjected):
        with faults.crash_at_outer(2):
            victim.fit(tiny_dataset, sampler=victim_sampler,
                       checkpoint_dir=tmp_path)
    assert 0 < len(victim_sampler.seed_log) < len(ref_sampler.seed_log)

    resumed = CATEHGN(_cfg())
    resumed_sampler = _sampler()
    resumed.fit(tiny_dataset, sampler=resumed_sampler,
                checkpoint_dir=tmp_path, resume=True)

    replayed = victim_sampler.seed_log + resumed_sampler.seed_log
    assert len(replayed) == len(ref_sampler.seed_log)
    for got, want in zip(replayed, ref_sampler.seed_log):
        assert np.array_equal(got, want)
    assert np.array_equal(resumed.predict(tiny_dataset), ref_pred)
    assert np.array_equal(np.asarray(resumed.history.val_rmse),
                          np.asarray(reference.history.val_rmse))


def test_resume_rejects_sampler_config_drift(tiny_dataset, tmp_path):
    victim = CATEHGN(_cfg())
    with pytest.raises(CrashInjected):
        with faults.crash_at_outer(2):
            victim.fit(tiny_dataset, sampler=_sampler(),
                       checkpoint_dir=tmp_path)

    # Different sampler geometry: the snapshot's RNG/cursor state would
    # silently desynchronize, so the resume must refuse.
    with pytest.raises(ValueError, match="sampler"):
        CATEHGN(_cfg()).fit(tiny_dataset, sampler=_sampler(batch_size=16),
                            checkpoint_dir=tmp_path, resume=True)
    # Resuming a sampled run in full-batch mode is drift too.
    with pytest.raises(ValueError, match="sampler"):
        CATEHGN(_cfg()).fit(tiny_dataset, checkpoint_dir=tmp_path,
                            resume=True)


def test_store_sampling_memory_ceiling(tmp_path):
    """Sampling minibatches from an on-disk store must not pull the
    store into RAM.

    ``tracemalloc`` counts Python-side allocations; memory-mapped pages
    are the OS's business.  So the assertion "python heap peak is a
    small fraction of the store payload" is exactly the claim we care
    about: no code path does ``np.asarray(whole_mmap)``.
    """
    store_dir = tmp_path / "store"
    synthesize_store(store_dir, 60_000, seed=0, chunk=10_000)
    store = GraphStore(store_dir)
    payload = store.nbytes()
    assert payload > 30 * 1024 * 1024, "store too small to be probative"

    train = np.asarray(store.split("train"))
    labels = np.asarray(store.attr(PAPER, "label"), dtype=np.float64)

    tracemalloc.start()
    sampler = _sampler(batch_size=256, fanouts=8, record_seeds=False)
    sampler.bind(store, train, np.log1p(labels[train]), hops=2)
    for _ in range(10):
        mb = sampler.next_minibatch()
        assert mb.batch.labels.shape == (256,)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    # Regression ceiling: sampling 10 batches allocates well under a
    # quarter of the on-disk payload (observed ~a few MB vs ~25+ MB).
    assert peak < payload / 4, (peak, payload)
