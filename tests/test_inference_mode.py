"""Tape-free inference mode: exact numbers, zero tape nodes.

``no_grad()`` / ``inference_mode()`` must (a) change *nothing* about the
computed values — inference mode only skips autodiff bookkeeping — and
(b) allocate zero tape nodes, observable through the process-wide
``tape_nodes_created`` counter that ``Tensor._make`` maintains.
"""

import numpy as np
import pytest

from repro.core.hgn import GraphBatch
from repro.core.model import CATEHGNConfig, CATEHGNModel
from repro.tensor import (
    Tensor,
    enable_grad,
    inference_mode,
    is_grad_enabled,
    no_grad,
    reset_tape_node_counter,
    set_grad_enabled,
    tape_nodes_created,
)


def _tiny_model_and_batch(dataset, seed=0):
    labels = dataset.labels[dataset.train_idx]
    norm = (labels - labels.mean()) / max(labels.std(), 1e-8)
    batch = GraphBatch.from_graph(dataset.graph, dataset.train_idx, norm)
    config = CATEHGNConfig(dim=8, attention_heads=2, num_clusters=4,
                           use_te=False, use_label_inputs=False, seed=seed)
    dims = {t: batch.features[t].shape[1] for t in batch.node_types}
    model = CATEHGNModel(config, batch.node_types, dims,
                         list(batch.edges.keys()))
    return model, batch


class TestGradModeSwitch:
    def test_default_enabled(self):
        assert is_grad_enabled()

    def test_no_grad_disables_and_restores(self):
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_nesting(self):
        with no_grad():
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
            with enable_grad():
                assert is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with no_grad():
                raise RuntimeError("boom")
        assert is_grad_enabled()

    def test_decorator(self):
        @no_grad()
        def f(x):
            assert not is_grad_enabled()
            return (x * 2.0).sum()

        x = Tensor(np.ones(3), requires_grad=True)
        y = f(x)
        assert not y._parents  # nothing recorded
        assert is_grad_enabled()

    def test_set_grad_enabled_modes(self):
        with set_grad_enabled(False):
            assert not is_grad_enabled()
        with set_grad_enabled(True):
            assert is_grad_enabled()

    def test_inference_mode_is_no_grad(self):
        with inference_mode():
            assert not is_grad_enabled()


class TestTapeNodeCounter:
    def test_grad_mode_counts_nodes(self):
        x = Tensor(np.ones((4, 4)), requires_grad=True)
        reset_tape_node_counter()
        ((x * 2.0) @ x).sum().backward()
        assert tape_nodes_created() > 0
        assert x.grad is not None

    def test_no_grad_creates_zero_tape_nodes(self):
        x = Tensor(np.ones((4, 4)), requires_grad=True)
        reset_tape_node_counter()
        with no_grad():
            y = ((x * 2.0) @ x).sum()
        assert tape_nodes_created() == 0
        assert not y._parents

    def test_untracked_inputs_create_zero_tape_nodes(self):
        # Even in grad mode, ops over constant tensors never hit the tape.
        x = Tensor(np.ones((4, 4)))
        reset_tape_node_counter()
        ((x * 2.0) @ x).sum()
        assert tape_nodes_created() == 0


class TestModelForwardExactness:
    """The full CATE-HGN forward is 0-ULP identical with the tape off."""

    def test_forward_bitwise_identical_and_tape_free(self, tiny_dataset):
        model, batch = _tiny_model_and_batch(tiny_dataset)
        L = model.config.num_layers

        state = model.forward_state(batch)
        grad_pred = model.hgn.regress(
            L, state.masked[L]["paper"]
        ).data.copy()

        reset_tape_node_counter()
        with inference_mode():
            state_ng = model.forward_state(batch)
            ng_pred = model.hgn.regress(L, state_ng.masked[L]["paper"]).data
        assert tape_nodes_created() == 0
        assert np.array_equal(grad_pred, ng_pred)  # 0 ULP

    def test_forward_bitwise_identical_legacy_path(self, tiny_dataset):
        model, batch = _tiny_model_and_batch(tiny_dataset)
        model.config.fused = False
        model.hgn.config.fused = False
        out = model.hgn(batch).layers[-1]["paper"].data.copy()
        reset_tape_node_counter()
        with no_grad():
            out_ng = model.hgn(batch).layers[-1]["paper"].data
        assert tape_nodes_created() == 0
        assert np.array_equal(out, out_ng)

    def test_predict_papers_is_tape_free(self, tiny_dataset):
        model, batch = _tiny_model_and_batch(tiny_dataset)
        reset_tape_node_counter()
        model.predict_papers(batch)
        assert tape_nodes_created() == 0
