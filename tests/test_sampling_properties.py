"""Property-based tests (hypothesis) on the neighbor-sampler invariants.

The sampler gates minibatch training, so its contracts are pinned as
properties over random seeds/fanouts rather than a handful of examples:
every sampled edge must exist in the source, per-edge-type fanout caps
must hold, the seed nodes must be present in every batch, a fixed seed
must replay a bitwise-identical sample sequence, and sampling from the
on-disk store must be indistinguishable from sampling from the
in-memory graph.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    ItemSampler,
    MinibatchSampler,
    NeighborSampler,
    TextArtifacts,
    generate_world,
    make_dblp_full,
    write_store_from_graph,
)
from repro.hetnet.schema import PAPER

from .conftest import tiny_config


@pytest.fixture(scope="module")
def world_pair(tmp_path_factory):
    """(HeteroGraph, GraphStore) views of the same tiny world."""
    world = generate_world(tiny_config(num_papers=120, num_authors=40))
    dataset = make_dblp_full(world=world, text=TextArtifacts.fit(world,
                                                                 dim=8))
    path = tmp_path_factory.mktemp("sampling") / "store"
    store = write_store_from_graph(dataset.graph, path)
    return dataset.graph, store


def _assert_subgraphs_equal(a, b):
    assert set(a.nodes) == set(b.nodes)
    for t in a.nodes:
        assert np.array_equal(a.nodes[t], b.nodes[t])
    assert set(a.edges) == set(b.edges)
    for key in a.edges:
        for x, y in zip(a.edges[key], b.edges[key]):
            assert np.array_equal(x, y)
    assert np.array_equal(a.seeds, b.seeds)
    assert np.array_equal(a.seed_local, b.seed_local)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000),
       fanout=st.integers(min_value=1, max_value=6),
       replace=st.booleans(),
       hops=st.integers(min_value=1, max_value=3))
def test_every_sampled_edge_exists(world_pair, seed, fanout, replace, hops):
    graph, store = world_pair
    sampler = NeighborSampler(store, fanout, hops=hops, replace=replace,
                              seed=seed)
    seeds = np.random.default_rng(seed).choice(
        store.num_nodes[PAPER], size=12, replace=False)
    sub = sampler.sample(seeds)
    for key, (src_local, dst_local, weight) in sub.edges.items():
        src_t, _, dst_t = key
        src = sub.nodes[src_t][src_local]
        dst = sub.nodes[dst_t][dst_local]
        csc = store.csc(key)
        for s, d, w in zip(src, dst, weight):
            lo, hi = csc.indptr[d], csc.indptr[d + 1]
            row = np.asarray(csc.indices[lo:hi])
            hits = np.nonzero(row == s)[0]
            assert len(hits), f"sampled edge {s}->{d} not in source {key}"
            assert w in np.asarray(csc.weights[lo:hi])[hits]


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000),
       fanout=st.integers(min_value=1, max_value=5),
       replace=st.booleans())
def test_fanout_caps_hold_per_edge_type(world_pair, seed, fanout, replace):
    _, store = world_pair
    sampler = NeighborSampler(store, fanout, hops=2, replace=replace,
                              seed=seed)
    seeds = np.random.default_rng(seed + 1).choice(
        store.num_nodes[PAPER], size=16, replace=False)
    sub = sampler.sample(seeds)
    assert sub.total_edges > 0
    for key, (_, dst_local, _) in sub.edges.items():
        if not len(dst_local):
            continue
        # A node is expanded at most once per sample(), so per-dst edge
        # counts are bounded by the fanout for both sampling modes.
        counts = np.bincount(dst_local)
        assert counts.max() <= fanout, (key, int(counts.max()), fanout)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_per_edge_type_fanout_mapping(world_pair, seed):
    """A dict fanout applies per edge type; 0 means 'do not expand'."""
    _, store = world_pair
    cites = (PAPER, "cites", PAPER)
    fanouts = {cites: 3}  # all other types default to 0
    sampler = NeighborSampler(store, fanouts, hops=2, seed=seed)
    seeds = np.arange(20, 40)
    sub = sampler.sample(seeds)
    for key, (_, dst_local, _) in sub.edges.items():
        if key == cites:
            if len(dst_local):
                assert np.bincount(dst_local).max() <= 3
        else:
            assert len(dst_local) == 0, f"{key} expanded despite fanout 0"


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000),
       fanout=st.integers(min_value=1, max_value=5),
       replace=st.booleans())
def test_fixed_seed_is_bitwise_replayable(world_pair, seed, fanout,
                                          replace):
    _, store = world_pair
    make = lambda: NeighborSampler(store, fanout, hops=2, replace=replace,
                                   seed=seed)  # noqa: E731
    a, b = make(), make()
    rng = np.random.default_rng(seed + 2)
    for _ in range(3):
        seeds = rng.choice(store.num_nodes[PAPER], size=10, replace=False)
        _assert_subgraphs_equal(a.sample(seeds), b.sample(seeds))
    # ... and a different sampler seed genuinely changes the draw.
    other = NeighborSampler(store, fanout, hops=2, replace=replace,
                            seed=seed + 1)
    seeds = rng.choice(store.num_nodes[PAPER], size=10, replace=False)
    sub_a, sub_other = a.sample(seeds), other.sample(seeds)
    if replace:  # without-replacement low fanouts may coincide
        assert any(
            not np.array_equal(sub_a.edges[k][0], sub_other.edges[k][0])
            for k in sub_a.edges
        )


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000),
       fanout=st.integers(min_value=1, max_value=5),
       hops=st.integers(min_value=1, max_value=3),
       replace=st.booleans())
def test_store_and_graph_sources_agree(world_pair, seed, fanout, hops,
                                       replace):
    """Sampling from the mmap store == sampling from the live graph."""
    graph, store = world_pair
    from_graph = NeighborSampler(graph, fanout, hops=hops, replace=replace,
                                 seed=seed)
    from_store = NeighborSampler(store, fanout, hops=hops, replace=replace,
                                 seed=seed)
    seeds = np.random.default_rng(seed + 3).choice(
        graph.num_nodes[PAPER], size=12, replace=False)
    _assert_subgraphs_equal(from_graph.sample(seeds),
                            from_store.sample(seeds))


@settings(max_examples=20, deadline=None)
@given(num_items=st.integers(min_value=1, max_value=200),
       batch_size=st.integers(min_value=1, max_value=64),
       seed=st.integers(min_value=0, max_value=10_000))
def test_item_sampler_epochs_are_permutations(num_items, batch_size, seed):
    items = np.arange(1000, 1000 + num_items)
    sampler = ItemSampler(items, batch_size, seed=seed)
    for _ in range(2):  # two full epochs
        epoch = [sampler.next_batch()
                 for _ in range(sampler.batches_per_epoch)]
        assert all(len(b) <= batch_size for b in epoch)
        joined = np.concatenate(epoch)
        assert np.array_equal(np.sort(joined), items)
    # Resuming from a mid-epoch snapshot replays the identical tail.
    fresh = ItemSampler(items, batch_size, seed=seed)
    for _ in range(3):
        fresh.next_batch()
    clone = ItemSampler(items, batch_size, seed=seed)
    clone.load_state_dict(fresh.state_dict())
    for _ in range(sampler.batches_per_epoch + 2):
        assert np.array_equal(fresh.next_batch(), clone.next_batch())


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000),
       batch_size=st.integers(min_value=4, max_value=48))
def test_minibatch_seeds_always_present(world_pair, seed, batch_size):
    """Every minibatch contains its seed papers, correctly relabeled."""
    graph, _ = world_pair
    sampler = MinibatchSampler(batch_size=batch_size, fanouts=4,
                               hops=2, seed=seed)
    items = np.arange(graph.num_nodes[PAPER])
    labels = np.random.default_rng(0).random(len(items))
    sampler.bind(graph, items, labels)
    covered = []
    for _ in range(sampler.batches_per_epoch):
        mb = sampler.next_minibatch()
        paper_ids = mb.nodes[PAPER]
        assert np.all(np.isin(mb.seeds, paper_ids))
        assert np.array_equal(paper_ids[mb.batch.labeled_ids], mb.seeds)
        assert np.array_equal(mb.batch.labels, labels[mb.seeds])
        covered.append(mb.seeds)
    assert np.array_equal(np.sort(np.concatenate(covered)), items)
