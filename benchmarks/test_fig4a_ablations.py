"""Figure 4(a): ablation study of CATE-HGN's components.

Three groups, matching the paper's bars:

- HGN:      sub / mult compositions, no MI, no attention, full (corr);
- CA-HGN:   no self-training, no consistency, no disparity, full CA;
- CATE-HGN: no BERT init, no TF-IDF linking, no iterative refinement,
            full TE.
"""

from repro.core import CATEHGN
from repro.eval import render_bar_chart, rmse

from .common import bench_config, bench_datasets, save_artifact

HGN_GROUP = {
    "HGN (sub)": dict(use_ca=False, use_te=False, composition="sub"),
    "HGN (mult)": dict(use_ca=False, use_te=False, composition="mult"),
    "HGN (-MI)": dict(use_ca=False, use_te=False, use_mi=False),
    "HGN (-attention)": dict(use_ca=False, use_te=False,
                             use_attention=False),
    "HGN (full)": dict(use_ca=False, use_te=False),
}

CA_GROUP = {
    "CA-HGN (-self-train)": dict(use_te=False, use_self_training=False),
    "CA-HGN (-consistency)": dict(use_te=False, use_consistency=False),
    "CA-HGN (-disparity)": dict(use_te=False, use_disparity=False),
    "CA-HGN (full)": dict(use_te=False),
}

TE_GROUP = {
    "CATE-HGN (-bert-init)": dict(te_bert_init=False),
    "CATE-HGN (-tfidf)": dict(te_tfidf=False),
    "CATE-HGN (-iterative)": dict(te_iterative=False),
    "CATE-HGN (full)": dict(),
}


def _run_group(dataset, group):
    scores = {}
    for name, overrides in group.items():
        model = CATEHGN(bench_config(**overrides)).fit(dataset)
        preds = model.predict()
        scores[name] = rmse(dataset.labels[dataset.test_idx],
                            preds[dataset.test_idx])
        print(f"  {name:<26s} {scores[name]:.4f}")
    return scores


def _run_all():
    dataset = bench_datasets()["full"]
    results = {}
    for group in (HGN_GROUP, CA_GROUP, TE_GROUP):
        results.update(_run_group(dataset, group))
    return results


def test_fig4a_component_ablations(benchmark):
    scores = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    chart = render_bar_chart(list(scores), list(scores.values()),
                             title="Fig. 4(a): CATE-HGN ablations "
                                   "(test RMSE, lower is better)")
    save_artifact("fig4a_ablations.txt", chart)

    # Direction checks (kept loose — single-seed CPU-scale runs).  The
    # full variant of each group should be within a small factor of its
    # own best ablation: removing a component must never produce a large
    # improvement.
    for group in ({k: scores[k] for k in HGN_GROUP},
                  {k: scores[k] for k in CA_GROUP},
                  {k: scores[k] for k in TE_GROUP}):
        full_key = next(k for k in group if k.endswith("(full)"))
        best_ablated = min(v for k, v in group.items() if k != full_key)
        assert group[full_key] <= best_ablated * 1.15, group
