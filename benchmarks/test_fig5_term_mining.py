"""Figure 5: adaptive quality-term mining across training iterations.

The paper visualizes how the per-domain term sets improve as the TE module
iterates.  With a synthetic world the planted quality terms are known, so
the figure becomes a measurable series: precision of each domain's mined
term set against the ground-truth quality terms, per refinement round.
"""

import numpy as np

from repro.eval import render_table

from .common import bench_datasets, save_artifact, trained_cate_full


def _precision(term_set, truth):
    if not term_set:
        return 0.0
    return sum(t in truth for t in term_set) / len(term_set)


def _mine():
    dataset = bench_datasets()["full"]
    model = trained_cate_full()
    world = dataset.world
    truths = [set(world.quality_terms(d))
              for d in range(len(world.domain_names))]
    union = set().union(*truths)
    history = model.term_history
    series = []
    for iteration, term_sets in enumerate(history):
        # Quality precision: mined terms that are planted quality terms of
        # ANY domain (vs generic/noise words) — the paper's "quality term
        # mining" claim.  Domain purity: terms landing in the right domain.
        quality = [_precision(terms, union) for terms in term_sets]
        purity = [_precision(terms, truth)
                  for terms, truth in zip(term_sets, truths)]
        series.append((iteration, float(np.mean(quality)),
                       float(np.mean(purity))))
    return series, history


def test_fig5_adaptive_term_mining(benchmark):
    series, history = benchmark.pedantic(_mine, rounds=1, iterations=1)
    dataset = bench_datasets()["full"]
    world = dataset.world

    rows = [[it, f"{q:.3f}", f"{p:.3f}"] for it, q, p in series]
    table = render_table(["iteration", "quality precision", "domain purity"],
                         rows,
                         title="Fig. 5: mined-term quality vs planted truth, "
                               "per TE iteration")
    # Also show the evolving 'data' term list like the paper's figure.
    listing = ["", "data-domain terms over iterations:"]
    seen = {0, len(history) // 2, len(history) - 1}
    for it in sorted(seen):
        listing.append(f"  iter {it}: " + ", ".join(history[it][0][:12]))
    save_artifact("fig5_term_mining.txt", table + "\n" + "\n".join(listing))

    quality = [q for _, q, _ in series]
    purity = [p for _, _, p in series]
    # Mined sets must stay dominated by genuine quality terms end to end,
    # and per-domain purity must stay far above the 1/9 chance rate.
    assert quality[-1] > 0.7, quality
    assert quality[-1] >= quality[0] - 0.15, quality
    assert purity[-1] > 3.0 / len(world.domain_names), purity
