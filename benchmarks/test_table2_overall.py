"""Table II: RMSE of all fifteen compared algorithms on the three networks.

The reproduction target is the paper's qualitative structure, not its
absolute numbers (the substrate is a reduced-scale synthetic world):

1. CATE-HGN is the best model overall;
2. CATE-HGN's RMSE is *identical* on DBLP-full and DBLP-random (it mines
   its own terms from raw text), while methods that trust the given
   paper-term links degrade on DBLP-random;
3. text-only (BERT) and homogeneous (GAT) models sit in the bottom tier,
   unsupervised embeddings (metapath2vec / hin2vec) below the supervised
   heterogeneous models.
"""

import numpy as np

from repro.baselines import make_baselines
from repro.eval import (
    make_cate_variants,
    render_table2,
    run_roster,
    significance_stars,
)

from .common import CATE_SETTINGS, bench_datasets, save_artifact, trained_cate_full

ORDER = ["BERT", "GAT", "CCP", "CPDF", "metapath2vec", "hin2vec", "R-GCN",
         "HAN", "HetGNN", "HGT", "MAGNN", "HGCN", "HGN", "CA-HGN",
         "CATE-HGN"]


def _run_all():
    datasets = bench_datasets()
    table = {}
    for key in ("full", "single", "random"):
        ds = datasets[key]
        roster = {}
        roster.update(make_baselines(dim=32, epochs=60, seed=0))
        roster.update(make_cate_variants(
            dim=CATE_SETTINGS["dim"], seed=0,
            **{k: v for k, v in CATE_SETTINGS.items()
               if k not in ("dim", "seed")},
        ))
        table[ds.name] = run_roster(ds, roster, verbose=True)
    return table


def test_table2_overall_performance(benchmark):
    table = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    datasets = {ds.name: ds for ds in bench_datasets().values()}
    stars = significance_stars(table, datasets)
    rendered = render_table2(table, ORDER, stars=stars)
    save_artifact("table2_overall.txt", rendered)

    full = {n: r.test_rmse for n, r in table["DBLP-full"].items()}
    rand = {n: r.test_rmse for n, r in table["DBLP-random"].items()}

    # (1) CATE-HGN wins on DBLP-full and DBLP-random.
    for scores in (full, rand):
        best = min(scores, key=scores.get)
        assert best == "CATE-HGN", f"expected CATE-HGN best, got {best}"

    # (2) Term-randomization immunity: identical to the digit on full vs
    # random (the paper's 3.4574 = 3.4574), while link-trusting baselines
    # degrade on average.
    assert np.isclose(full["CATE-HGN"], rand["CATE-HGN"], atol=1e-9)
    trusting = ["CPDF", "CCP", "HGN", "HGT", "HAN", "HGCN", "R-GCN"]
    deltas = [rand[n] - full[n] for n in trusting]
    assert np.mean(deltas) > 0, f"term-trusting models should degrade: {deltas}"

    # (3) Tier sanity on DBLP-full: the HGN family beats the weak tiers.
    weak_tier = max(full["HGN"], full["CA-HGN"], full["CATE-HGN"])
    for name in ("BERT", "GAT", "metapath2vec", "hin2vec"):
        assert full[name] > weak_tier, f"{name} should trail the HGN family"
