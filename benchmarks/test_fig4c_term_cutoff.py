"""Figure 4(c): sensitivity to the relevant-term cut-off κ.

The paper reports a broad plateau around κ = 50-100, degrading only at
extreme settings (too few terms starve the TE module; too many admit
noise).
"""

from repro.core import CATEHGN
from repro.eval import render_series, rmse

from .common import bench_config, bench_datasets, save_artifact

KAPPA_VALUES = (10, 25, 50, 100, 200)


def _sweep():
    dataset = bench_datasets()["full"]
    scores = []
    for kappa in KAPPA_VALUES:
        model = CATEHGN(bench_config(kappa=kappa)).fit(dataset)
        preds = model.predict()
        score = rmse(dataset.labels[dataset.test_idx],
                     preds[dataset.test_idx])
        scores.append(score)
        print(f"  kappa={kappa:<4d} RMSE={score:.4f}")
    return scores


def test_fig4c_term_cutoff_sweep(benchmark):
    scores = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    chart = render_series(KAPPA_VALUES, scores,
                          title="Fig. 4(c): term cut-off kappa vs test RMSE",
                          x_name="kappa")
    save_artifact("fig4c_term_cutoff.txt", chart)

    spread = max(scores) - min(scores)
    assert spread < 0.3 * min(scores), scores
