"""Table III: top-impact authors, venues, and terms by learned domain.

Trains the full CATE-HGN and, for the "data" and "system" domains (the two
the paper showcases), lists the highest-impact nodes among each domain's
strongest cluster members.  Membership is read at the middle HGN layer,
where embeddings still balance topical content against the impact signal
that dominates the final layer.  Quality is scored against the planted
ground truth; as the paper itself notes, "the modeling of domains [is]
not exactly accurate" because clusters bootstrap from bare domain names,
so the assertions check clearly-above-chance coherence rather than purity.
"""

import numpy as np

from repro.eval import render_table
from repro.hetnet import AUTHOR, TERM, VENUE

from .common import bench_datasets, save_artifact, trained_cate_full

SHOWN_DOMAINS = {"data": 0, "system": 7}
TOP_K = 10
MEMBERSHIP_LAYER = 1


def _top_nodes(model, node_type, cluster, names):
    """Strongest cluster members, displayed in impact order."""
    memberships = model.soft_memberships(layer=MEMBERSHIP_LAYER)[node_type]
    selected = np.argsort(-memberships[:, cluster])[:TOP_K]
    impacts = model.node_impacts(node_type, cluster=cluster)
    order = selected[np.argsort(-impacts[selected])]
    return [names[i] for i in order], order


def _case_study():
    model = trained_cate_full()
    graph = model._graph
    out = {}
    for domain_name, domain in SHOWN_DOMAINS.items():
        cluster = model.domain_cluster(domain, layer=MEMBERSHIP_LAYER)
        authors, a_idx = _top_nodes(model, AUTHOR, cluster,
                                    graph.node_names[AUTHOR])
        venues, v_idx = _top_nodes(model, VENUE, cluster,
                                   graph.node_names[VENUE])
        terms, t_idx = _top_nodes(model, TERM, cluster,
                                  graph.node_names[TERM])
        out[domain_name] = dict(authors=authors, venues=venues, terms=terms,
                                author_idx=a_idx, venue_idx=v_idx,
                                term_idx=t_idx)
    return out


def test_table3_top_impact_by_domain(benchmark):
    result = benchmark.pedantic(_case_study, rounds=1, iterations=1)
    dataset = bench_datasets()["full"]
    world = dataset.world

    rows = []
    for rank in range(TOP_K):
        row = [rank + 1]
        for domain_name in SHOWN_DOMAINS:
            row += [result[domain_name]["authors"][rank],
                    result[domain_name]["venues"][rank][:34],
                    result[domain_name]["terms"][rank]]
        rows.append(row)
    table = render_table(
        ["#", "author(data)", "venue(data)", "term(data)",
         "author(system)", "venue(system)", "term(system)"],
        rows, title="Table III: top-impact nodes by domain (CATE-HGN)")
    save_artifact("table3_case_study.txt", table)

    # Terms: the showcased domain's top terms should be planted quality
    # terms of that domain well above the 1/9 chance rate.
    num_domains = len(world.domain_names)
    chance = 1.0 / num_domains
    for domain_name, domain in SHOWN_DOMAINS.items():
        truth = set(world.quality_terms(domain))
        hit = np.mean([t in truth for t in result[domain_name]["terms"]])
        assert hit >= 2 * chance, (domain_name, result[domain_name]["terms"])

    # Authors + venues: mean coherence across the showcased domains above
    # chance — domain-conditioned impact, not a single global ranking.
    coherences = []
    for domain_name, domain in SHOWN_DOMAINS.items():
        a_idx = result[domain_name]["author_idx"]
        coherences.append(np.mean([world.authors[i].primary_domain == domain
                                   for i in a_idx]))
        v_idx = result[domain_name]["venue_idx"]
        coherences.append(np.mean([world.venues[i].domain == domain
                                   for i in v_idx]))
    assert np.mean(coherences) >= 1.5 * chance, coherences

    # The two domains must produce genuinely different rankings.
    assert (result["data"]["authors"] != result["system"]["authors"]
            or result["data"]["terms"] != result["system"]["terms"])
