"""Shared infrastructure for the benchmark harness.

All experiments run on one shared synthetic world (the DESIGN.md §2
substitution for DBLP-2019 ⋈ AMiner-V11) at CPU scale, with the three
Table-I networks derived from it.  Datasets and the headline trained model
are cached per process so the case-study benches reuse the Table-II run.
"""

from __future__ import annotations

from functools import lru_cache
from pathlib import Path
from typing import Dict

from repro.core import CATEHGN, CATEHGNConfig
from repro.data import CitationDataset, WorldConfig, make_all_datasets

RESULTS_DIR = Path(__file__).resolve().parent / "results"

# Benchmark world: large enough for stable tiers, small enough for CPU.
BENCH_WORLD = dict(num_papers=1000, num_authors=200, seed=3)

# CATE-HGN settings shared by every experiment (Section IV-A3, CPU scale).
CATE_SETTINGS = dict(dim=24, attention_heads=2, outer_iters=18, mini_iters=8,
                     lr=0.01, kappa=40, patience=8, seed=0)


def bench_config(**overrides) -> CATEHGNConfig:
    params = dict(CATE_SETTINGS)
    params.update(overrides)
    return CATEHGNConfig(**params)


@lru_cache(maxsize=1)
def bench_datasets() -> Dict[str, CitationDataset]:
    return make_all_datasets(WorldConfig(**BENCH_WORLD))


@lru_cache(maxsize=1)
def trained_cate_full() -> CATEHGN:
    """The headline CATE-HGN, trained once on DBLP-full and shared by the
    Table-III and Figure-5 case studies."""
    return CATEHGN(bench_config()).fit(bench_datasets()["full"])


def save_artifact(name: str, text: str) -> None:
    """Persist a rendered table/figure and echo it to the bench log."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / name).write_text(text + "\n")
    print()
    print(text)
