"""Figure 4(b): sensitivity to the number of clusters K.

The paper reports insensitivity except at extreme values, with a sweet
spot around K = 10-20 (the number of real domains plus one).
"""

from repro.core import CATEHGN
from repro.eval import render_series, rmse

from .common import bench_config, bench_datasets, save_artifact

K_VALUES = (2, 5, 10, 20, 40)


def _sweep():
    dataset = bench_datasets()["full"]
    scores = []
    for k in K_VALUES:
        model = CATEHGN(bench_config(num_clusters=k)).fit(dataset)
        preds = model.predict()
        score = rmse(dataset.labels[dataset.test_idx],
                     preds[dataset.test_idx])
        scores.append(score)
        print(f"  K={k:<3d} RMSE={score:.4f}")
    return scores


def test_fig4b_cluster_number_sweep(benchmark):
    scores = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    chart = render_series(K_VALUES, scores,
                          title="Fig. 4(b): #clusters K vs test RMSE",
                          x_name="K")
    save_artifact("fig4b_clusters.txt", chart)

    # Insensitivity plateau: the spread across the sweep stays small
    # relative to the error level (the paper's "no significant impact
    # unless extreme" claim).
    spread = max(scores) - min(scores)
    assert spread < 0.25 * min(scores), scores
