"""Load-test harness for the asyncio serving runtime (DESIGN §16).

``python -m benchmarks.perf loadtest`` replays a ``/predict`` workload
from ~1k concurrent keep-alive clients against **both** serving
runtimes — the asyncio server with cross-request dynamic batching and
the threaded server it sits alongside — and commits QPS, client-side
p50/p99, and the measured batching behaviour (mean batch size, batch
histogram, queue-wait vs compute split) into the ``"serving_async"``
section of ``BENCH_perf.json``.

The harness is its own asyncio program: each simulated client owns one
persistent connection and replays requests back-to-back, so the number
of in-flight requests equals the client count.  Both servers see the
*same* workload (same seed, same id lists, same client count); the
engines run with ``cache_size=0`` so every request pays a real head
application — with the LRU on, cache hits would make batching look
free.  Client latencies are measured from first request byte to last
response byte, which charges queueing, batching, and compute to the
request exactly as a caller would experience it.

Batching metrics are reset between the warmup and measured phases (the
harness is quiescent at that point — every warmup response has been
read), so the committed batch-size histogram weighted-sums to exactly
the measured request count; the BENCH schema test pins that identity.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core import CATEHGN

from ..common import bench_config, bench_datasets

#: Coalesced-cost watermark used for the benchmark run: high enough
#: that a 1k-client burst (4 ids each) is split into a handful of
#: flushes, low enough that a flush never exceeds one engine
#: micro-batch by much.
LOADTEST_BATCH = dict(max_batch_size=1024, max_wait_ms=2.0,
                      max_queue_depth=4096)
IDS_PER_REQUEST = 4


# ---------------------------------------------------------------------------
# Minimal asyncio HTTP/1.1 client (keep-alive, Content-Length framed)
# ---------------------------------------------------------------------------

async def _read_response(reader: asyncio.StreamReader) -> Tuple[int, dict, bytes]:
    status_line = await reader.readline()
    if not status_line:
        raise ConnectionResetError("server closed connection")
    parts = status_line.decode("latin-1").split(None, 2)
    status = int(parts[1])
    headers: Dict[str, str] = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        name, _, value = raw.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    body = b""
    length = int(headers.get("content-length") or 0)
    if length:
        body = await reader.readexactly(length)
    return status, headers, body


#: Reconnect-and-retry attempts per request: a keep-alive connection the
#: server idled out (or a reset under extreme accept pressure) is
#: re-dialed like any real HTTP client would, not counted as an error.
CLIENT_RETRIES = 3


async def _client(host: str, port: int, requests: List[bytes],
                  latencies: List[float], statuses: List[int]) -> None:
    """One simulated client: a persistent connection replaying requests."""
    loop = asyncio.get_running_loop()
    reader = writer = None
    try:
        for payload in requests:
            start = loop.time()
            for attempt in range(CLIENT_RETRIES):
                try:
                    if writer is None:
                        reader, writer = await asyncio.open_connection(
                            host, port)
                    writer.write(payload)
                    await writer.drain()
                    status, headers, _body = await _read_response(reader)
                except (ConnectionResetError, ConnectionRefusedError,
                        BrokenPipeError, asyncio.IncompleteReadError):
                    if writer is not None:
                        writer.close()
                        writer = None
                    if attempt == CLIENT_RETRIES - 1:
                        raise
                    continue
                break
            # Latency spans the whole request including any re-dial —
            # that is what a caller would experience.
            latencies.append(loop.time() - start)
            statuses.append(status)
            if headers.get("connection", "").lower() == "close":
                writer.close()
                writer = None
    finally:
        if writer is not None:
            writer.close()


def _encode_request(paper_ids: List[int]) -> bytes:
    body = json.dumps({"paper_ids": paper_ids}).encode()
    head = (f"POST /predict HTTP/1.1\r\n"
            f"Host: loadtest\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: keep-alive\r\n\r\n")
    return head.encode() + body


def _workload(concurrency: int, per_client: int,
              num_papers: int, seed: int) -> List[List[bytes]]:
    """Deterministic per-client request scripts (same for both servers)."""
    rng = np.random.default_rng(seed)
    scripts = []
    for _ in range(concurrency):
        script = []
        for _ in range(per_client):
            ids = rng.integers(0, num_papers, size=IDS_PER_REQUEST)
            script.append(_encode_request([int(x) for x in ids]))
        scripts.append(script)
    return scripts


def _percentiles(latencies: List[float]) -> Dict[str, float]:
    arr = np.sort(np.asarray(latencies, dtype=np.float64))
    if arr.size == 0:
        return {"p50_ms": 0.0, "p99_ms": 0.0, "mean_ms": 0.0}
    return {
        "p50_ms": float(np.percentile(arr, 50) * 1e3),
        "p99_ms": float(np.percentile(arr, 99) * 1e3),
        "mean_ms": float(arr.mean() * 1e3),
    }


def _replay(host: str, port: int, scripts: List[List[bytes]],
            warmup_scripts: List[List[bytes]],
            between_phases: Optional[Callable[[], None]] = None) -> dict:
    """Warmup, optional metric reset, then the measured phase."""

    async def _phase(phase_scripts: List[List[bytes]]) -> Tuple[dict, float]:
        latencies: List[float] = []
        statuses: List[int] = []
        start = time.perf_counter()
        await asyncio.gather(*(
            _client(host, port, script, latencies, statuses)
            for script in phase_scripts))
        wall = time.perf_counter() - start
        total = len(statuses)
        errors = sum(1 for s in statuses if s != 200)
        out = {"requests": total, "errors": errors,
               "wall_s": wall,
               "qps": float(total / max(wall, 1e-12))}
        out.update(_percentiles(latencies))
        return out, wall

    async def _main() -> dict:
        await _phase(warmup_scripts)
        if between_phases is not None:
            # Quiescent point: every warmup response has been read and
            # no measured request has been sent yet.
            between_phases()
        measured, _wall = await _phase(scripts)
        return measured

    return asyncio.run(_main())


# ---------------------------------------------------------------------------
# Benchmark entry point
# ---------------------------------------------------------------------------

def bench_serving_async(concurrency: int = 1000, per_client: int = 5,
                        warmup_per_client: int = 2,
                        seed: int = 7) -> Dict[str, object]:
    """QPS / latency / batching comparison: asyncio vs threaded serving.

    Boots both servers over the *same* frozen engine checkpoint (each
    with its own ``cache_size=0`` engine instance so neither runtime
    benefits from result caching or poisons the other's state) and
    replays the identical multi-client workload against each.
    """
    import tempfile
    from pathlib import Path

    from repro.serve import (
        BackgroundAsyncServer,
        BatchSettings,
        InferenceEngine,
        ServiceLimits,
        make_server,
    )
    import threading

    dataset = bench_datasets()["full"]
    est = CATEHGN(bench_config(outer_iters=2)).fit(dataset)
    with tempfile.TemporaryDirectory() as tmp:
        path = est.save_checkpoint(Path(tmp) / "model")
        async_engine = InferenceEngine.from_checkpoint(path, cache_size=0)
        threaded_engine = InferenceEngine.from_checkpoint(path, cache_size=0)

    num_papers = int(async_engine.num_papers)
    scripts = _workload(concurrency, per_client, num_papers, seed)
    warmup = _workload(concurrency, warmup_per_client, num_papers, seed + 1)

    # -- asyncio runtime with dynamic batching ---------------------------
    settings = BatchSettings(**LOADTEST_BATCH)
    bg = BackgroundAsyncServer(async_engine, settings=settings)
    host, port = bg.start()
    try:
        async_result = _replay(
            host, port, scripts, warmup,
            between_phases=bg.app.batcher.metrics.reset)
        batching = bg.app.batcher.snapshot()
    finally:
        bg.shutdown()

    # -- threaded runtime (same workload, shedding disabled) -------------
    limits = ServiceLimits(max_inflight=2 * concurrency)
    server = make_server(threaded_engine, port=0, verbose=False,
                         limits=limits)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        threaded_result = _replay(
            server.server_address[0], server.server_address[1],
            scripts, warmup)
    finally:
        server.shutdown()
        thread.join(timeout=30)

    for key in ("queue_depth", "queue_capacity", "settings"):
        batching.pop(key, None)

    return {
        "concurrency": int(concurrency),
        "requests_per_client": int(per_client),
        "total_requests": int(concurrency * per_client),
        "ids_per_request": IDS_PER_REQUEST,
        "num_papers": num_papers,
        "batch_settings": dict(LOADTEST_BATCH),
        "async": {**async_result, "batching": batching},
        "threaded": threaded_result,
        "qps_speedup_vs_threaded": float(
            async_result["qps"] / max(threaded_result["qps"], 1e-12)),
    }


#: Batch settings of the replica subprocesses (``repro.fleet.replica``
#: defaults) — the inline single-replica baseline runs with the *same*
#: settings so the fleet comparison isolates routing + process count.
FLEET_BATCH = dict(max_batch_size=256, max_wait_ms=2.0,
                   max_queue_depth=4096)


def bench_serving_fleet(num_replicas: int = 2, concurrency: int = 1000,
                        per_client: int = 5, warmup_per_client: int = 2,
                        seed: int = 7) -> Dict[str, object]:
    """Fleet QPS / latency vs a single inline async replica + failover blip.

    Three measured phases over the identical workload:

    1. ``single_async`` — one in-process :class:`BackgroundAsyncServer`
       (the DESIGN §16 runtime) with the replica subprocesses' batch
       settings: the no-router, no-subprocess baseline.
    2. ``fleet`` — ``num_replicas`` replica subprocesses behind the
       consistent-hash router, steady state.
    3. ``failover`` — the same fleet workload with one replica
       SIGKILLed partway through the phase; errors must stay 0 (the
       router retries ring successors) and the committed QPS fraction
       quantifies the blip.

    All engines run ``cache_size=0`` so every request pays a real head
    application on both sides of the comparison.
    """
    import tempfile
    import threading
    from pathlib import Path

    from repro.fleet import ServingFleet
    from repro.serve import BackgroundAsyncServer, BatchSettings, InferenceEngine

    dataset = bench_datasets()["full"]
    est = CATEHGN(bench_config(outer_iters=2)).fit(dataset)
    # The temp dir must outlive the fleet: replica subprocesses open the
    # checkpoint from disk on every (re)start, unlike the inline engines.
    with tempfile.TemporaryDirectory() as tmp:
        path = est.save_checkpoint(Path(tmp) / "model")
        engine = InferenceEngine.from_checkpoint(path, cache_size=0)
        num_papers = int(engine.num_papers)
        scripts = _workload(concurrency, per_client, num_papers, seed)
        warmup = _workload(concurrency, warmup_per_client, num_papers,
                           seed + 1)

        # -- single inline async replica (baseline) ----------------------
        bg = BackgroundAsyncServer(engine,
                                   settings=BatchSettings(**FLEET_BATCH))
        host, port = bg.start()
        try:
            single = _replay(host, port, scripts, warmup)
        finally:
            bg.shutdown()

        # -- fleet: steady state, then failover ---------------------------
        fleet = ServingFleet(str(path), num_replicas, cache_size=0)
        host, port = fleet.start()
        try:
            steady = _replay(host, port, scripts, warmup)

            kill_after = max(0.2, 0.4 * steady["wall_s"])
            victim = fleet.supervisor.replica_names()[0]
            timer = threading.Timer(
                kill_after, fleet.supervisor.kill_replica, args=(victim,))
            timer.start()
            try:
                failover = _replay(host, port, scripts, warmup_scripts=[])
            finally:
                timer.cancel()
            restarts = fleet.supervisor.status()["replicas"][victim][
                "restarts"]
        finally:
            fleet.shutdown()

    return {
        "num_replicas": int(num_replicas),
        "concurrency": int(concurrency),
        "requests_per_client": int(per_client),
        "total_requests": int(concurrency * per_client),
        "ids_per_request": IDS_PER_REQUEST,
        "num_papers": num_papers,
        "batch_settings": dict(FLEET_BATCH),
        "single_async": single,
        "fleet": steady,
        "failover": {**failover, "killed_replica": victim,
                     "kill_after_s": float(kill_after),
                     "victim_restarts": int(restarts)},
        "fleet_qps_vs_single_async": float(
            steady["qps"] / max(single["qps"], 1e-12)),
        "failover_qps_fraction": float(
            failover["qps"] / max(steady["qps"], 1e-12)),
    }
