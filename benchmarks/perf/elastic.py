"""Elastic-training transport benchmark (DESIGN §18).

``python -m benchmarks.perf --section elastic_tcp`` times the K-worker
all-reduce training step over both gradient transports — the same-host
shared-memory fast path and the length-prefixed socket layer — and
measures the warm-standby router takeover.

Per worker count the section reports the per-step wall time of each
transport (a one-step run is timed separately and subtracted, so the
figure isolates the steady-state step from graph build + worker spawn),
the TCP overhead factor, and two correctness fields the regression gate
enforces: ``fingerprint_match`` (the TCP run must replay the
shared-memory trajectory bit-for-bit) and ``transport_errors`` (RPC
handler errors + codec errors, required to be zero — a lossy or
corrupting transport that still converges is not a pass).

The takeover phase boots a ``ServingFleet(standby=True)``, drives a
keep-alive client load, SIGKILLs the active router mid-run, and commits
the standby's measured promotion latency plus the number of client
requests that failed across the switch (required to be zero).
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Sequence

from ..common import bench_config, bench_datasets

#: Delay between starting the client load and killing the active
#: router: long enough that the kill lands mid-load, short enough that
#: plenty of requests remain to exercise the promoted twin.
KILL_AFTER_S = 0.3


def _time_fit(config, dataset, *, num_workers: int, steps: int,
              transport: str):
    from repro.fleet import ElasticTrainer

    start = time.perf_counter()
    result = ElasticTrainer(config, num_workers=num_workers, steps=steps,
                            transport=transport).fit(dataset)
    return time.perf_counter() - start, result


def bench_elastic_tcp(worker_counts: Sequence[int] = (2, 4),
                      steps: int = 8, concurrency: int = 100,
                      per_client: int = 4,
                      seed: int = 7) -> Dict[str, object]:
    """shm-vs-tcp all-reduce step time per K + standby takeover latency."""
    from repro.core import CATEHGN
    from repro.fleet import ServingFleet
    from repro.fleet.client import predict_scripts, run_load

    dataset = bench_datasets()["full"]
    config = bench_config(dim=16, outer_iters=2, mini_iters=1)

    by_workers: Dict[str, dict] = {}
    for num_workers in worker_counts:
        entry: Dict[str, object] = {}
        results = {}
        for transport in ("shm", "tcp"):
            # The one-step run pays the same estimator build + worker
            # spawn as the measured run; the difference is pure steps.
            setup_s, _ = _time_fit(config, dataset,
                                   num_workers=num_workers, steps=1,
                                   transport=transport)
            wall_s, result = _time_fit(config, dataset,
                                       num_workers=num_workers,
                                       steps=steps, transport=transport)
            results[transport] = result
            entry[transport] = {
                "wall_s": float(wall_s),
                "setup_s": float(setup_s),
                "step_mean_s": float((wall_s - setup_s) / (steps - 1)),
            }
        rpc = {key: int(value) for key, value
               in results["tcp"].transport_stats["rpc"].items()}
        entry["tcp"]["rpc"] = rpc
        entry["fingerprint_match"] = bool(
            results["tcp"].fingerprint == results["shm"].fingerprint)
        entry["transport_errors"] = rpc["errors"] + rpc["codec_errors"]
        entry["deaths"] = len(results["tcp"].deaths)
        entry["tcp_overhead"] = float(
            entry["tcp"]["step_mean_s"]
            / max(entry["shm"]["step_mean_s"], 1e-12))
        by_workers[str(num_workers)] = entry

    # -- warm-standby takeover under load --------------------------------
    import tempfile
    from pathlib import Path

    est = CATEHGN(bench_config(outer_iters=2)).fit(dataset)
    with tempfile.TemporaryDirectory() as tmp:
        path = est.save_checkpoint(Path(tmp) / "model")
        fleet = ServingFleet(str(path), 2, probe_interval=0.2,
                             standby=True)
        host, port = fleet.start()
        try:
            scripts = predict_scripts(concurrency, per_client,
                                      int(dataset.num_papers), seed=seed)
            holder = []
            load = threading.Thread(
                target=lambda: holder.append(run_load(host, port, scripts)))
            load.start()
            time.sleep(KILL_AFTER_S)
            kill_t0 = time.perf_counter()
            fleet.kill_active()
            promoted = fleet.standby.promoted.wait(10)
            # Kill → promoted: lease-expiry detection plus the port
            # rebind — the window clients bridge with retries.
            blackout_s = time.perf_counter() - kill_t0
            load.join(timeout=120)
            takeover_s = fleet.standby.takeover_seconds
            syncs = fleet.standby.syncs
        finally:
            fleet.shutdown()
    result = holder[0]

    return {
        "steps": int(steps),
        "worker_counts": [int(k) for k in worker_counts],
        "num_papers": int(dataset.num_papers),
        "by_workers": by_workers,
        "takeover": {
            "promoted": bool(promoted),
            "blackout_s": float(blackout_s),
            "takeover_s": float(takeover_s) if takeover_s else None,
            "membership_syncs": int(syncs),
            "concurrency": int(concurrency),
            "requests_total": int(result.total),
            "requests_failed": int(result.failures
                                   + result.server_errors()),
        },
    }
