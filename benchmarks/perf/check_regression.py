"""Perf regression gate: fail if the CATE-HGN epoch regresses >25 %.

Usage::

    python benchmarks/perf/check_regression.py [--threshold 0.25]
        [--baseline benchmarks/results/BENCH_perf.json] [--report FRESH.json]

Without ``--report`` the gate re-measures the fused CATE-HGN epoch time
on the current tree (a short 3-outer-iteration fit at BENCH_WORLD scale)
and compares it against the ``cate_epochs.fused.epoch_mean_s`` recorded
in the committed baseline.  With ``--report`` it compares two JSON
reports instead (no re-run).  Exits nonzero when

    current_epoch_mean > baseline_epoch_mean * (1 + threshold)

Refresh the committed baseline with ``python -m benchmarks.perf`` after
an intentional perf-relevant change.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "results" / "BENCH_perf.json"


def measure_current_epoch(outer_iters: int = 3) -> float:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    sys.path.insert(0, str(REPO_ROOT))
    import numpy as np

    from benchmarks.common import bench_config, bench_datasets
    from repro.core import CATEHGN

    model = CATEHGN(bench_config(outer_iters=outer_iters, fused=True))
    model.fit(bench_datasets()["full"])
    iters = model.history.iter_seconds
    steady = iters[1:] if len(iters) > 1 else iters
    return float(np.mean(steady))


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument("--report", type=Path, default=None,
                        help="compare this fresh BENCH_perf.json instead of "
                             "re-measuring")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed fractional slowdown (default 0.25)")
    args = parser.parse_args()

    if not args.baseline.exists():
        print(f"FAIL: baseline {args.baseline} not found "
              f"(generate with `python -m benchmarks.perf`)")
        return 2
    baseline = json.loads(args.baseline.read_text())
    base_epoch = baseline["cate_epochs"]["fused"]["epoch_mean_s"]

    if args.report is not None:
        fresh = json.loads(args.report.read_text())
        current = fresh["cate_epochs"]["fused"]["epoch_mean_s"]
        source = str(args.report)
    else:
        start = time.perf_counter()
        current = measure_current_epoch()
        source = f"re-measured in {time.perf_counter() - start:.1f}s"

    limit = base_epoch * (1.0 + args.threshold)
    failed = current > limit
    verdict = "OK" if not failed else "REGRESSION"
    print(f"{verdict}: fused CATE-HGN epoch {current:.3f}s vs baseline "
          f"{base_epoch:.3f}s (limit {limit:.3f}s, {source})")

    # Serving throughput gate: only meaningful when both reports carry a
    # measured serving_async section (the loadtest is too heavy for the
    # re-measure path).
    if args.report is not None:
        base_sa = baseline.get("serving_async")
        fresh_sa = fresh.get("serving_async")
        if base_sa and fresh_sa:
            base_qps = base_sa["async"]["qps"]
            cur_qps = fresh_sa["async"]["qps"]
            floor = base_qps * (1.0 - args.threshold)
            qps_failed = cur_qps < floor
            failed = failed or qps_failed
            print(f"{'REGRESSION' if qps_failed else 'OK'}: serving_async "
                  f"{cur_qps:,.0f} QPS vs baseline {base_qps:,.0f} "
                  f"(floor {floor:,.0f})")
        base_sf = baseline.get("serving_fleet")
        fresh_sf = fresh.get("serving_fleet")
        if base_sf and fresh_sf:
            base_qps = base_sf["fleet"]["qps"]
            cur_qps = fresh_sf["fleet"]["qps"]
            floor = base_qps * (1.0 - args.threshold)
            qps_failed = cur_qps < floor
            # The failover phase rides along: any non-200 under the
            # mid-phase replica kill is a correctness regression, not a
            # perf number to haggle over.
            errors = int(fresh_sf["failover"]["errors"])
            failed = failed or qps_failed or errors > 0
            print(f"{'REGRESSION' if qps_failed else 'OK'}: serving_fleet "
                  f"{cur_qps:,.0f} QPS vs baseline {base_qps:,.0f} "
                  f"(floor {floor:,.0f})")
            if errors:
                print(f"REGRESSION: serving_fleet failover phase saw "
                      f"{errors} non-200 responses (must be 0)")
        fresh_et = fresh.get("elastic_tcp")
        if fresh_et:
            # Pure correctness gates: the socket transport must replay
            # the shared-memory trajectory bit-for-bit with zero
            # transport-level errors, and the standby takeover must not
            # fail a single client request.  No baseline needed.
            for count, entry in sorted(fresh_et["by_workers"].items()):
                errors = int(entry["transport_errors"])
                mismatch = not entry["fingerprint_match"]
                if errors or mismatch:
                    failed = True
                    reason = " and ".join(
                        ([f"{errors} transport errors"] if errors else [])
                        + (["shm/tcp fingerprint mismatch"]
                           if mismatch else []))
                    print(f"REGRESSION: elastic_tcp K={count} saw {reason} "
                          f"(must be 0 errors, bitwise match)")
                else:
                    print(f"OK: elastic_tcp K={count} bitwise match, "
                          f"0 transport errors "
                          f"({entry['tcp_overhead']:.2f}x shm step time)")
            dropped = int(fresh_et["takeover"]["requests_failed"])
            if dropped:
                failed = True
                print(f"REGRESSION: router takeover failed {dropped} "
                      f"client requests (must be 0)")
            else:
                takeover_s = fresh_et["takeover"]["takeover_s"]
                shown = (f"{takeover_s * 1e3:.0f}ms"
                         if takeover_s is not None else "n/a")
                print(f"OK: router takeover {shown}, 0 failed requests")

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
