"""Performance benchmark harness (DESIGN §10).

Times the hot paths that the fused-kernel + batch-structure-cache work
targets, at BENCH_WORLD scale, in both engine modes:

* ``fused``  — fused autodiff kernels + shared :class:`BatchStructure`
  cache (the default engine).
* ``legacy`` — the composed-elementary-op path (``fused=False``), kept
  as the numerical reference.  Its timings are the "pre-change
  measurement" that the fused speedups are reported against.

Three granularities:

* **op** — microbenchmarks of each fused kernel against its composed
  equivalent at representative message-passing shapes (forward +
  backward), plus tape-node and tape-byte counts.
* **forward/backward** — one :class:`OneSpaceHGN` encoder pass over the
  bench batch, and the same pass with ``backward()``.
* **epoch** — end-to-end outer iterations of the full CATE-HGN trainer
  and training epochs of the RGCN / GAT / HAN baselines.
* **serve** — checkpoint → frozen :class:`repro.serve.InferenceEngine`
  query latency: cold vs. warm single-query and micro-batched bulk
  throughput, against the full grad-mode forward they replace.
* **contracts** — the data-contract layer (DESIGN §13): clean-graph and
  clean-batch scan cost (the per-ingestion overhead of validation) and
  the full detect+repair pass over a poisoned bench graph.
* **sampling** — minibatch neighbor-sampling throughput (seed papers/s)
  from the memory-mapped on-disk graph store (DESIGN §15) at 100k and
  1M papers, with the tracemalloc peak as no-full-load evidence.

Run with ``python -m benchmarks.perf`` (writes
``benchmarks/results/BENCH_perf.json``); gate regressions in CI with
``python benchmarks/perf/check_regression.py``.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List

import numpy as np

from repro.core import CATEHGN, GraphBatch, HGNConfig, OneSpaceHGN
from repro.tensor import (
    Tensor,
    gather,
    gather_matmul,
    masked_softmax_combine,
    segment_softmax,
    segment_softmax_fused,
    segment_sum,
    segment_weighted_sum,
    softmax,
)

from ..common import RESULTS_DIR, bench_config, bench_datasets

BENCH_PERF_PATH = RESULTS_DIR / "BENCH_perf.json"

# Representative message-passing shape at BENCH_WORLD scale: an edge
# type with ~8k edges into ~1k destination nodes, dim 24, 2 heads.
OP_EDGES = 8_000
OP_NODES = 1_000
OP_DIM = 24
OP_HEADS = 2


# ---------------------------------------------------------------------------
# Timing / tape utilities
# ---------------------------------------------------------------------------

def time_fn(fn: Callable[[], object], repeats: int = 5,
            warmup: int = 1) -> Dict[str, float]:
    """Best-of / mean-of wall-clock timings for ``fn`` in seconds."""
    for _ in range(warmup):
        fn()
    samples: List[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return {
        "mean_s": float(np.mean(samples)),
        "min_s": float(np.min(samples)),
        "repeats": repeats,
    }


def tape_stats(root: Tensor) -> Dict[str, int]:
    """Count autodiff tape nodes and live intermediate bytes under ``root``.

    A fused kernel replaces several elementary nodes with one, so these
    counts are the allocation-side view of the fusion win.
    """
    seen: set[int] = set()
    stack = [root]
    nodes = 0
    nbytes = 0
    while stack:
        t = stack.pop()
        if id(t) in seen:
            continue
        seen.add(id(t))
        nodes += 1
        nbytes += int(t.data.nbytes)
        stack.extend(t._parents)
    return {"tape_nodes": nodes, "tape_bytes": nbytes}


def _speedup(legacy: Dict[str, float], fused: Dict[str, float]) -> float:
    return float(legacy["mean_s"] / max(fused["mean_s"], 1e-12))


# ---------------------------------------------------------------------------
# Op-level microbenchmarks
# ---------------------------------------------------------------------------

def _op_case(name: str, fused_fn: Callable[[], Tensor],
             legacy_fn: Callable[[], Tensor],
             repeats: int) -> Dict[str, object]:
    def run(fn: Callable[[], Tensor]) -> None:
        fn().sum().backward()

    fused_t = time_fn(lambda: run(fused_fn), repeats=repeats)
    legacy_t = time_fn(lambda: run(legacy_fn), repeats=repeats)
    return {
        "op": name,
        "fused": fused_t,
        "legacy": legacy_t,
        "speedup": _speedup(legacy_t, fused_t),
        "fused_tape": tape_stats(fused_fn().sum()),
        "legacy_tape": tape_stats(legacy_fn().sum()),
    }


def bench_ops(repeats: int = 5) -> List[Dict[str, object]]:
    from repro.hetnet.structure import EdgeStructure

    rng = np.random.default_rng(0)

    def leaf(*shape):
        # requires_grad so every case builds (and times) a real tape.
        return Tensor(rng.normal(size=shape), requires_grad=True)

    src = rng.integers(0, OP_NODES, OP_EDGES).astype(np.intp)
    dst = np.sort(rng.integers(0, OP_NODES, OP_EDGES)).astype(np.intp)
    es = EdgeStructure(src, dst, OP_NODES)
    table = leaf(OP_NODES, OP_DIM)
    weight = leaf(OP_DIM, OP_DIM)
    scores = leaf(OP_EDGES, OP_HEADS)
    values = leaf(OP_EDGES, OP_DIM)
    alpha_col = Tensor(rng.random(OP_EDGES), requires_grad=True)
    num_types = 5
    score_mat = leaf(OP_NODES, num_types)
    aggs = [leaf(OP_NODES, OP_DIM) for _ in range(num_types)]
    mask = rng.random((OP_NODES, num_types)) > 0.3
    mask[:, -1] = True

    cases = [
        _op_case(
            "gather_matmul",
            lambda: gather_matmul(table, src, weight),
            lambda: gather(table, src) @ weight,
            repeats,
        ),
        _op_case(
            "segment_softmax_fused",
            lambda: segment_softmax_fused(scores, dst, OP_NODES, sorter=es),
            lambda: segment_softmax(scores, dst, OP_NODES),
            repeats,
        ),
        _op_case(
            "segment_weighted_sum",
            lambda: segment_weighted_sum(values, alpha_col, dst, OP_NODES,
                                         sorter=es),
            lambda: segment_sum(values * alpha_col.reshape(-1, 1), dst,
                                OP_NODES),
            repeats,
        ),
        _op_case(
            "masked_softmax_combine",
            lambda: masked_softmax_combine(score_mat, aggs, mask),
            lambda: _legacy_masked_combine(score_mat, aggs, mask),
            repeats,
        ),
    ]
    return cases


def _legacy_masked_combine(score_mat: Tensor, aggs: List[Tensor],
                           mask: np.ndarray) -> Tensor:
    penalty = np.where(mask, 0.0, -1e9)
    beta = softmax(score_mat + Tensor(penalty), axis=1)
    combined = aggs[0] * beta[:, 0].reshape(-1, 1)
    for t in range(1, len(aggs)):
        combined = combined + aggs[t] * beta[:, t].reshape(-1, 1)
    return combined


# ---------------------------------------------------------------------------
# HGN encoder forward / backward
# ---------------------------------------------------------------------------

def _bench_batch() -> GraphBatch:
    dataset = bench_datasets()["full"]
    ids = np.arange(min(64, dataset.graph.num_nodes["paper"]), dtype=np.intp)
    return GraphBatch.from_graph(dataset.graph, ids,
                                 np.zeros(len(ids)))


def _bench_hgn(batch: GraphBatch, fused: bool) -> OneSpaceHGN:
    config = HGNConfig(dim=OP_DIM, attention_heads=OP_HEADS, seed=0,
                       fused=fused)
    feature_dims = {t: batch.features[t].shape[1] for t in batch.node_types}
    return OneSpaceHGN(config, batch.node_types, feature_dims,
                       list(batch.edges.keys()))


def bench_hgn_passes(repeats: int = 5) -> Dict[str, object]:
    batch = _bench_batch()
    out: Dict[str, object] = {}
    for mode, fused in (("fused", True), ("legacy", False)):
        net = _bench_hgn(batch, fused)
        if fused:
            batch.structure  # warm the cache, as the trainer does

        def forward():
            return net(batch).layers[-1]["paper"]

        def forward_backward():
            forward().sum().backward()

        out[mode] = {
            "forward": time_fn(forward, repeats=repeats),
            "forward_backward": time_fn(forward_backward, repeats=repeats),
            "tape": tape_stats(forward().sum()),
        }
    out["forward_speedup"] = _speedup(out["legacy"]["forward"],
                                      out["fused"]["forward"])
    out["forward_backward_speedup"] = _speedup(
        out["legacy"]["forward_backward"], out["fused"]["forward_backward"])
    return out


# ---------------------------------------------------------------------------
# End-to-end epochs
# ---------------------------------------------------------------------------

def bench_cate_epochs(outer_iters: int = 4) -> Dict[str, object]:
    dataset = bench_datasets()["full"]
    out: Dict[str, object] = {}
    for mode, fused in (("fused", True), ("legacy", False)):
        config = bench_config(outer_iters=outer_iters, fused=fused)
        model = CATEHGN(config)
        start = time.perf_counter()
        model.fit(dataset)
        total = time.perf_counter() - start
        iters = model.history.iter_seconds
        # Skip the first iteration: it absorbs one-off setup (encoder
        # warm-up, centre initialisation, cache build in fused mode).
        steady = iters[1:] if len(iters) > 1 else iters
        out[mode] = {
            "outer_iters": len(iters),
            "epoch_mean_s": float(np.mean(steady)),
            "epoch_min_s": float(np.min(steady)),
            "total_fit_s": total,
        }
    out["epoch_speedup"] = float(out["legacy"]["epoch_mean_s"]
                                 / max(out["fused"]["epoch_mean_s"], 1e-12))
    return out


def bench_baseline_epochs(epochs: int = 8) -> Dict[str, object]:
    from repro.baselines.gat import GAT
    from repro.baselines.gnn_common import GNNTrainConfig
    from repro.baselines.han import HAN
    from repro.baselines.rgcn import RGCN

    dataset = bench_datasets()["full"]
    out: Dict[str, object] = {}
    for cls in (RGCN, GAT, HAN):
        entry: Dict[str, object] = {}
        for mode, fused in (("fused", True), ("legacy", False)):
            config = GNNTrainConfig(epochs=epochs, seed=0, fused=fused)
            model = cls(config)
            start = time.perf_counter()
            model.fit(dataset)
            total = time.perf_counter() - start
            entry[mode] = {"epochs": epochs,
                           "epoch_mean_s": total / epochs,
                           "total_fit_s": total}
        entry["epoch_speedup"] = float(
            entry["legacy"]["epoch_mean_s"]
            / max(entry["fused"]["epoch_mean_s"], 1e-12))
        out[cls.name] = entry
    return out


# ---------------------------------------------------------------------------
# Serving (DESIGN §11): checkpoint → frozen engine → query latency
# ---------------------------------------------------------------------------

def bench_serve(repeats: int = 20) -> Dict[str, object]:
    """Cold vs. warm single-query latency and micro-batch throughput.

    The serving acceptance headline: a warm-cache single query must be
    ≥5x faster than the full grad-mode forward it replaces (in practice
    it is orders of magnitude faster — an LRU hit never touches the
    model at all, and even a cold miss only pays one head application
    over the frozen embeddings).
    """
    import tempfile
    from pathlib import Path

    from repro.serve import InferenceEngine

    dataset = bench_datasets()["full"]
    est = CATEHGN(bench_config(outer_iters=2)).fit(dataset)
    with tempfile.TemporaryDirectory() as tmp:
        path = est.save_checkpoint(Path(tmp) / "model")
        start = time.perf_counter()
        engine = InferenceEngine.from_checkpoint(path)
        load_and_freeze_s = time.perf_counter() - start

    # Reference: what a single query costs without the engine — a full
    # grad-mode (tape-building) forward over the graph plus the head.
    L = engine.model.config.num_layers

    def grad_forward():
        state = engine.model.forward_state(engine.batch)
        return engine.model.hgn.regress(L, state.masked[L]["paper"])

    grad_t = time_fn(grad_forward, repeats=max(3, repeats // 4))

    query_id = [engine.num_papers // 2]

    def cold_query():
        engine.cache.clear()
        engine.predict(query_id)

    cold_t = time_fn(cold_query, repeats=repeats)

    engine.predict(query_id)  # prime the LRU

    def warm_query():
        engine.predict(query_id)

    warm_t = time_fn(warm_query, repeats=repeats)

    all_ids = np.arange(engine.num_papers, dtype=np.intp)

    def bulk():
        engine.cache.clear()
        engine.predict(all_ids)

    bulk_t = time_fn(bulk, repeats=max(3, repeats // 4))
    bulk_t["papers_per_s"] = float(engine.num_papers
                                   / max(bulk_t["mean_s"], 1e-12))

    return {
        "num_papers": int(engine.num_papers),
        "micro_batch": engine.micro_batch,
        "load_and_freeze_s": load_and_freeze_s,
        "freeze_forward_s": engine.freeze_seconds,
        "grad_forward": grad_t,
        "cold_single_query": cold_t,
        "warm_single_query": warm_t,
        "bulk": bulk_t,
        "cold_speedup_vs_grad_forward": _speedup(grad_t, cold_t),
        "warm_speedup_vs_grad_forward": _speedup(grad_t, warm_t),
    }


# ---------------------------------------------------------------------------
# Data contracts (DESIGN §13): validation scan and repair-pass cost
# ---------------------------------------------------------------------------

def _clone_graph(graph):
    """Deep-enough copy so poisoning never leaks into the cached dataset."""
    from repro.hetnet.graph import EdgeArray, HeteroGraph

    g = HeteroGraph(graph.schema)
    g.num_nodes = dict(graph.num_nodes)
    g.node_names = {t: list(v) for t, v in graph.node_names.items()}
    g.node_features = {t: f.copy() for t, f in graph.node_features.items()}
    g.node_attrs = {t: {k: v.copy() for k, v in attrs.items()}
                    for t, attrs in graph.node_attrs.items()}
    g.edges = {k: EdgeArray(e.src.copy(), e.dst.copy(), e.weight.copy())
               for k, e in graph.edges.items()}
    g._topology_version += 1
    return g


def bench_contracts(repeats: int = 5,
                    epoch_mean_s: float = None) -> Dict[str, object]:
    """Cost of the DESIGN §13 contract layer at BENCH_WORLD scale.

    Three numbers matter operationally: the **clean scan** (what every
    ``load_graph(..., policy=)`` / ``fit(..., validate=)`` call pays on
    healthy data), the **batch scan** (C010-C012 per built batch), and
    the **repair pass** (detect + rebuild on a graph poisoned with ~1%
    bad edges).  When the caller passes the fused CATE-HGN
    ``epoch_mean_s`` (``run_all`` does), the clean scan is also
    reported as a fraction of one training epoch — the anchor that
    shows validate-on-fit is effectively free (it runs once per fit,
    not per epoch).
    """
    from repro.contracts import check_batch, check_graph, validate_graph
    from repro.hetnet.graph import EdgeArray
    from repro.hetnet.schema import PAPER

    dataset = bench_datasets()["full"]
    graph = dataset.graph
    num_edges = int(sum(e.num_edges for e in graph.edges.values()))

    clean_t = time_fn(lambda: check_graph(graph), repeats=repeats)
    clean_t["edges_per_s"] = float(num_edges / max(clean_t["mean_s"], 1e-12))

    build_t = time_fn(
        lambda: GraphBatch.from_graph(graph, dataset.train_idx,
                                      dataset.labels[dataset.train_idx]),
        repeats=repeats)
    batch = GraphBatch.from_graph(graph, dataset.train_idx,
                                  dataset.labels[dataset.train_idx])
    batch_t = time_fn(lambda: check_batch(batch), repeats=repeats)

    # Poison ~1% of the citation edges: dangling src + duplicated pairs.
    poisoned = _clone_graph(graph)
    key = (PAPER, "cites", PAPER)
    edge = poisoned.edges[key]
    n_bad = max(4, edge.num_edges // 100)
    rng = np.random.default_rng(0)
    pick = rng.integers(edge.num_edges, size=n_bad)
    poisoned.edges[key] = EdgeArray(
        np.concatenate([edge.src, np.full(n_bad, poisoned.num_nodes[PAPER] + 1,
                                          dtype=edge.src.dtype),
                        edge.src[pick]]),
        np.concatenate([edge.dst, np.zeros(n_bad, dtype=edge.dst.dtype),
                        edge.dst[pick]]),
        np.concatenate([edge.weight, np.ones(2 * n_bad)]))
    poisoned._topology_version += 1

    repair_t = time_fn(lambda: validate_graph(poisoned, policy="repair"),
                       repeats=repeats)

    out = {
        "num_edges": num_edges,
        "poisoned_edges": int(2 * n_bad),
        "clean_graph_scan": clean_t,
        "clean_batch_scan": batch_t,
        "batch_build": build_t,
        "repair_pass": repair_t,
    }
    if epoch_mean_s is not None:
        out["scan_fraction_of_epoch"] = float(
            clean_t["mean_s"] / max(epoch_mean_s, 1e-12))
    return out


# ---------------------------------------------------------------------------
# Minibatch sampling from the on-disk store (DESIGN §15)
# ---------------------------------------------------------------------------

def bench_sampling(scales=(100_000, 1_000_000), batches: int = 20,
                   batch_size: int = 512, fanouts: int = 8,
                   hops: int = 2) -> Dict[str, object]:
    """Seed-paper throughput of neighbor-sampled minibatching at scale.

    Synthesizes an on-disk store per scale (chunked writer — never holds
    the graph in RAM), then times ``MinibatchSampler.next_minibatch``
    over the training split.  ``python_peak_bytes`` is the tracemalloc
    peak across bind + sampling: it covers only the O(num_papers) label
    bookkeeping plus one subgraph's working set, a small fraction of
    ``store_bytes`` (memory-mapped pages are not Python allocations) —
    the no-full-load evidence the minibatch path was merged on.
    """
    import tempfile
    import tracemalloc
    from pathlib import Path

    from repro.data import MinibatchSampler, synthesize_store
    from repro.hetnet.schema import PAPER

    out: Dict[str, object] = {
        "batch_size": batch_size, "fanouts": fanouts, "hops": hops,
        "scales": {},
    }
    for num_papers in scales:
        with tempfile.TemporaryDirectory() as tmp:
            start = time.perf_counter()
            store = synthesize_store(Path(tmp) / "store", num_papers,
                                     seed=0)
            build_s = time.perf_counter() - start
            train = np.asarray(store.split("train"))
            labels = np.asarray(store.attr(PAPER, "label"),
                                dtype=np.float64)

            tracemalloc.start()
            sampler = MinibatchSampler(batch_size=batch_size,
                                       fanouts=fanouts, hops=hops, seed=0)
            sampler.bind(store, train, np.log1p(labels[train]))
            sampler.next_minibatch()  # warm the mmap/page caches
            batch_nodes = 0
            start = time.perf_counter()
            for _ in range(batches):
                mb = sampler.next_minibatch()
                batch_nodes += sum(len(ids) for ids in mb.nodes.values())
            sample_s = time.perf_counter() - start
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()

            out["scales"][str(num_papers)] = {
                "num_papers": int(num_papers),
                "num_train": int(len(train)),
                "store_edges": int(store.total_edges),
                "store_bytes": int(store.nbytes()),
                "build_s": float(build_s),
                "batches": int(batches),
                "batches_per_s": float(batches / max(sample_s, 1e-12)),
                "papers_per_s": float(batches * batch_size
                                      / max(sample_s, 1e-12)),
                "mean_batch_nodes": float(batch_nodes / batches),
                "python_peak_bytes": int(peak),
            }
    return out


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------

def run_all(quick: bool = False) -> Dict[str, object]:
    repeats = 2 if quick else 5
    outer_iters = 2 if quick else 4
    epochs = 3 if quick else 8
    report: Dict[str, object] = {
        "bench": "BENCH_perf",
        "generated_by": "python -m benchmarks.perf",
        "ops": bench_ops(repeats=repeats),
        "hgn_passes": bench_hgn_passes(repeats=repeats),
        "cate_epochs": bench_cate_epochs(outer_iters=outer_iters),
        "baseline_epochs": bench_baseline_epochs(epochs=epochs),
        "serve": bench_serve(repeats=5 if quick else 20),
    }
    report["contracts"] = bench_contracts(
        repeats=repeats,
        epoch_mean_s=report["cate_epochs"]["fused"]["epoch_mean_s"])
    report["sampling"] = bench_sampling(
        scales=(20_000, 100_000) if quick else (100_000, 1_000_000),
        batches=5 if quick else 20)
    return report
