"""CLI entry: ``python -m benchmarks.perf`` → benchmarks/results/BENCH_perf.json."""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from . import (
    BENCH_PERF_PATH,
    bench_baseline_epochs,
    bench_cate_epochs,
    bench_contracts,
    bench_hgn_passes,
    bench_ops,
    bench_sampling,
    bench_serve,
    run_all,
)


def _bench_serving_async(quick: bool) -> dict:
    # Imported lazily: the loadtest boots real servers and is only
    # needed for the ``loadtest`` command / ``--section serving_async``.
    from .loadtest import bench_serving_async

    if quick:
        return bench_serving_async(concurrency=64, per_client=5)
    return bench_serving_async(concurrency=1000, per_client=5)


#: Mutable knobs the CLI sets before dispatching into ``SECTIONS``
#: (the section callables only receive ``quick``).
_OPTS = {"fleet_replicas": 2}


def _bench_serving_fleet(quick: bool) -> dict:
    from .loadtest import bench_serving_fleet

    replicas = _OPTS["fleet_replicas"]
    if quick:
        return bench_serving_fleet(num_replicas=replicas,
                                   concurrency=64, per_client=5)
    return bench_serving_fleet(num_replicas=replicas,
                               concurrency=1000, per_client=5)


def _bench_elastic_tcp(quick: bool) -> dict:
    from .elastic import bench_elastic_tcp

    if quick:
        return bench_elastic_tcp(worker_counts=(2,), steps=4,
                                 concurrency=32)
    return bench_elastic_tcp(worker_counts=(2, 4), steps=8,
                             concurrency=100)


#: Individually re-runnable report sections for ``--section``: measuring
#: one subsystem must not require re-timing the whole harness.
SECTIONS = {
    "ops": lambda quick: bench_ops(repeats=2 if quick else 5),
    "hgn_passes": lambda quick: bench_hgn_passes(repeats=2 if quick else 5),
    "cate_epochs": lambda quick: bench_cate_epochs(
        outer_iters=2 if quick else 4),
    "baseline_epochs": lambda quick: bench_baseline_epochs(
        epochs=3 if quick else 8),
    "serve": lambda quick: bench_serve(repeats=5 if quick else 20),
    "contracts": lambda quick: bench_contracts(repeats=2 if quick else 5),
    "sampling": lambda quick: bench_sampling(
        scales=(20_000, 100_000) if quick else (100_000, 1_000_000),
        batches=5 if quick else 20),
    "serving_async": _bench_serving_async,
    "serving_fleet": _bench_serving_fleet,
    "elastic_tcp": _bench_elastic_tcp,
}

#: Sections that ``run_all`` does not re-measure (they need their own
#: entry point); preserved verbatim when the full harness rewrites the
#: report so a plain ``python -m benchmarks.perf`` never drops them.
PRESERVED_SECTIONS = ("serving_async", "serving_fleet", "elastic_tcp")


def summarize(report: dict) -> str:
    lines = ["BENCH_perf summary", "=================="]
    for case in report.get("ops", []):
        lines.append(
            f"op {case['op']:<24} {case['speedup']:.2f}x  "
            f"tape {case['legacy_tape']['tape_nodes']}→"
            f"{case['fused_tape']['tape_nodes']} nodes"
        )
    hp = report.get("hgn_passes")
    if hp:
        lines.append(f"hgn forward           {hp['forward_speedup']:.2f}x")
        lines.append(
            f"hgn forward+backward  {hp['forward_backward_speedup']:.2f}x")
    ce = report.get("cate_epochs")
    if ce:
        lines.append(
            f"CATE-HGN epoch        {ce['epoch_speedup']:.2f}x  "
            f"({ce['legacy']['epoch_mean_s']:.3f}s → "
            f"{ce['fused']['epoch_mean_s']:.3f}s)"
        )
    for name, entry in report.get("baseline_epochs", {}).items():
        lines.append(f"{name:<9} epoch       {entry['epoch_speedup']:.2f}x")
    sv = report.get("serve")
    if sv:
        lines.append(
            f"serve cold query      "
            f"{sv['cold_speedup_vs_grad_forward']:.0f}x  "
            f"({sv['grad_forward']['mean_s'] * 1e3:.1f}ms → "
            f"{sv['cold_single_query']['mean_s'] * 1e3:.3f}ms)"
        )
        lines.append(
            f"serve warm query      "
            f"{sv['warm_speedup_vs_grad_forward']:.0f}x  "
            f"(→ {sv['warm_single_query']['mean_s'] * 1e3:.3f}ms)"
        )
        lines.append(
            f"serve bulk            {sv['bulk']['papers_per_s']:,.0f} papers/s"
        )
    ct = report.get("contracts")
    if ct:  # absent in reports written before the contract layer existed
        frac = ct.get("scan_fraction_of_epoch")
        anchor = (f", {frac * 100:.2f}% of one epoch" if frac is not None
                  else "")
        lines.append(
            f"contracts clean scan  "
            f"{ct['clean_graph_scan']['mean_s'] * 1e3:.2f}ms "
            f"({ct['clean_graph_scan']['edges_per_s']:,.0f} edges/s{anchor})"
        )
        lines.append(
            f"contracts repair      "
            f"{ct['repair_pass']['mean_s'] * 1e3:.2f}ms "
            f"({ct['poisoned_edges']} poisoned edges)"
        )
    sp = report.get("sampling")
    if sp:  # absent in reports written before the on-disk store existed
        for scale, entry in sp["scales"].items():
            lines.append(
                f"sampling @{int(scale):>9,} papers  "
                f"{entry['papers_per_s']:,.0f} papers/s  "
                f"(store {entry['store_bytes'] / 2**20:,.0f} MiB, "
                f"py peak {entry['python_peak_bytes'] / 2**20:.1f} MiB)"
            )
    sa = report.get("serving_async")
    if sa:  # absent until `python -m benchmarks.perf loadtest` has run
        a, t = sa["async"], sa["threaded"]
        lines.append(
            f"serving_async @{sa['concurrency']} clients  "
            f"{a['qps']:,.0f} QPS  p50 {a['p50_ms']:.1f}ms  "
            f"p99 {a['p99_ms']:.1f}ms  "
            f"mean batch {a['batching']['mean_batch_size']:.1f}"
        )
        lines.append(
            f"  vs threaded          "
            f"{t['qps']:,.0f} QPS  p50 {t['p50_ms']:.1f}ms  "
            f"p99 {t['p99_ms']:.1f}ms  "
            f"({sa['qps_speedup_vs_threaded']:.2f}x async)"
        )
    sf = report.get("serving_fleet")
    if sf:  # absent until `python -m benchmarks.perf loadtest --fleet N`
        fl, fo = sf["fleet"], sf["failover"]
        lines.append(
            f"serving_fleet x{sf['num_replicas']} @{sf['concurrency']} "
            f"clients  {fl['qps']:,.0f} QPS  p50 {fl['p50_ms']:.1f}ms  "
            f"p99 {fl['p99_ms']:.1f}ms  "
            f"({sf['fleet_qps_vs_single_async']:.2f}x single async)"
        )
        lines.append(
            f"  failover blip        "
            f"{fo['qps']:,.0f} QPS ({sf['failover_qps_fraction']:.2f}x "
            f"steady)  errors {fo['errors']}  "
            f"p99 {fo['p99_ms']:.1f}ms"
        )
    et = report.get("elastic_tcp")
    if et:  # absent until `python -m benchmarks.perf --section elastic_tcp`
        for count, entry in et["by_workers"].items():
            match = "ok" if entry["fingerprint_match"] else "MISMATCH"
            lines.append(
                f"elastic K={count} step     "
                f"shm {entry['shm']['step_mean_s'] * 1e3:.0f}ms  "
                f"tcp {entry['tcp']['step_mean_s'] * 1e3:.0f}ms "
                f"({entry['tcp_overhead']:.2f}x)  bitwise {match}  "
                f"errors {entry['transport_errors']}"
            )
        to = et["takeover"]
        if to["takeover_s"] is not None:
            lines.append(
                f"router takeover       "
                f"{to['blackout_s'] * 1e3:.0f}ms kill→promoted "
                f"(rebind {to['takeover_s'] * 1e3:.0f}ms)  "
                f"{to['requests_failed']}/{to['requests_total']} "
                f"requests failed"
            )
    return "\n".join(lines)


def main() -> None:
    parser = argparse.ArgumentParser(prog="python -m benchmarks.perf")
    parser.add_argument("command", nargs="?", choices=["loadtest"],
                        help="loadtest: multi-client serving load test "
                             "(asyncio vs threaded) → serving_async "
                             "section; with --fleet N, replica fleet vs "
                             "single async → serving_fleet section")
    parser.add_argument("--quick", action="store_true",
                        help="fewer repeats / iterations (smoke run)")
    parser.add_argument("--fleet", type=int, metavar="N", default=None,
                        help="with loadtest: measure an N-replica serving "
                             "fleet (router + supervised subprocesses) → "
                             "serving_fleet section")
    parser.add_argument("--output", type=Path, default=BENCH_PERF_PATH,
                        help=f"where to write the JSON report "
                             f"(default: {BENCH_PERF_PATH})")
    parser.add_argument("--section", choices=sorted(SECTIONS),
                        action="append",
                        help="re-measure only the named section(s) and "
                             "merge into the existing report (repeatable)")
    args = parser.parse_args()

    if args.fleet is not None:
        _OPTS["fleet_replicas"] = args.fleet
    if args.command == "loadtest":
        if args.fleet is not None:
            args.section = (args.section or []) + ["serving_fleet"]
        else:
            args.section = (args.section or []) + ["serving_async"]
    if args.section:
        report = (json.loads(args.output.read_text())
                  if args.output.exists() else {})
        for name in args.section:
            report[name] = SECTIONS[name](args.quick)
    else:
        previous = (json.loads(args.output.read_text())
                    if args.output.exists() else {})
        report = run_all(quick=args.quick)
        for name in PRESERVED_SECTIONS:
            if name in previous:
                report[name] = previous[name]
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(summarize(report))
    print(f"\nwrote {args.output}")


if __name__ == "__main__":
    main()
