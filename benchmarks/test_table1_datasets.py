"""Table I: statistics of the constructed publication networks.

Regenerates the dataset-statistics table (papers / authors / venues /
terms / links per network) for the three DBLP analogues.
"""

from repro.eval import render_table

from .common import bench_datasets, save_artifact


def test_table1_dataset_statistics(benchmark):
    datasets = benchmark.pedantic(bench_datasets, rounds=1, iterations=1)

    headers = ["Dataset", "#papers", "#authors", "#venues", "#terms", "#links"]
    rows = []
    for name, ds in datasets.items():
        stats = ds.statistics()
        rows.append([ds.name, stats["#paper"], stats["#author"],
                     stats["#venue"], stats["#term"], stats["#links"]])
    table = render_table(headers, rows,
                         title="Table I: statistics of the constructed "
                               "networks (CPU-scale analogue)")
    save_artifact("table1_datasets.txt", table)

    full, single, random_ = (datasets["full"], datasets["single"],
                             datasets["random"])
    # Paper's structure: full and random share sizes; single is the
    # data-domain slice and much smaller.
    assert full.statistics() == random_.statistics()
    assert single.num_papers < full.num_papers / 3
    assert full.graph.total_edges > 10_000
