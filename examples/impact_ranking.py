"""Research-impact ranking of authors and venues.

The one-space HGN embeds every node type with the same citation regressor
on top, so the trained model scores not just papers but authors, venues,
and terms (the paper's Table-III capability).  This example ranks authors
and venues by predicted impact and grades the rankings against the
generator's planted prestige/authority with Spearman correlation.

Run:  python examples/impact_ranking.py
"""

import numpy as np
from scipy import stats

from repro.core import CATEHGN, CATEHGNConfig
from repro.data import WorldConfig, make_dblp_full
from repro.hetnet import AUTHOR, VENUE


def main() -> None:
    dataset = make_dblp_full(WorldConfig(num_papers=700, num_authors=150,
                                         seed=5))
    config = CATEHGNConfig(dim=16, attention_heads=2, outer_iters=12,
                           mini_iters=6, lr=0.015, kappa=30, patience=8,
                           seed=0)
    model = CATEHGN(config).fit(dataset)
    world = dataset.world

    author_impact = model.node_impacts(AUTHOR)
    venue_impact = model.node_impacts(VENUE)

    # Planted ground truth: an author's prestige in their primary domain,
    # a venue's authority.
    true_author = np.array([a.prestige[a.primary_domain]
                            for a in world.authors])
    true_venue = np.array([v.authority for v in world.venues])

    rho_a, _ = stats.spearmanr(author_impact, true_author)
    rho_v, _ = stats.spearmanr(venue_impact, true_venue)
    print(f"Spearman(predicted author impact, planted prestige)  = {rho_a:.3f}")
    print(f"Spearman(predicted venue impact,  planted authority) = {rho_v:.3f}")

    print("\ntop 10 authors by predicted impact:")
    for i in np.argsort(-author_impact)[:10]:
        author = world.authors[i]
        domain = dataset.domain_names[author.primary_domain]
        print(f"  {author.name:<20s} domain={domain:<10s} "
              f"planted prestige={true_author[i]:.2f}")

    print("\ntop 5 venues by predicted impact:")
    for i in np.argsort(-venue_impact)[:5]:
        venue = world.venues[i]
        print(f"  {venue.name[:52]:<52s} authority={venue.authority:.2f}")


if __name__ == "__main__":
    main()
