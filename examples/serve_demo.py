"""Serving demo: train CATE-HGN, checkpoint it, and serve predictions.

Walks the whole production path from DESIGN.md §11: fit → versioned
.npz checkpoint → frozen tape-free InferenceEngine → JSON HTTP service,
then queries every endpoint the way a client would.

Run:  python examples/serve_demo.py
"""

import json
import tempfile
import threading
import urllib.request
from pathlib import Path

import numpy as np

from repro.core import CATEHGN, CATEHGNConfig
from repro.data import WorldConfig, make_dblp_full
from repro.serve import InferenceEngine, make_server


def _get(base: str, path: str) -> dict:
    with urllib.request.urlopen(base + path, timeout=10) as response:
        return json.loads(response.read())


def _post(base: str, path: str, body: dict) -> dict:
    request = urllib.request.Request(
        base + path, data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return json.loads(response.read())


def main() -> None:
    # 1. Train a small CATE-HGN (same recipe as quickstart.py).
    dataset = make_dblp_full(WorldConfig(num_papers=400, num_authors=100,
                                         seed=1))
    config = CATEHGNConfig(dim=16, attention_heads=2, outer_iters=6,
                           mini_iters=4, lr=0.015, kappa=30, seed=0)
    model = CATEHGN(config).fit(dataset)
    reference = model.predict()

    with tempfile.TemporaryDirectory() as tmp:
        # 2. Persist: one versioned .npz (parameters, config, label scaler,
        #    text embeddings) plus a graph sidecar for the snapshot.
        path = model.save_checkpoint(Path(tmp) / "model")
        size_kb = Path(path).stat().st_size / 1024
        print(f"checkpoint: {path} ({size_kb:.0f} KiB)")

        # 3. Restore into an inference engine: one tape-free forward
        #    freezes every node embedding; queries never run message
        #    passing again.
        engine = InferenceEngine.from_checkpoint(path)

    print(f"freeze forward: {engine.freeze_seconds * 1e3:.1f} ms "
          f"({engine.num_papers} papers)")

    # 4. Predictions are bitwise-identical to the estimator's.
    served = engine.predict_all()
    assert np.array_equal(reference, served)
    print(f"bitwise match vs estimator: {np.array_equal(reference, served)}")

    # 5. Table-III-style impact ranking, and cold-start scoring of a
    #    paper the model has never seen, straight from its title.
    print("\ntop-3 authors by predicted impact:")
    for row in engine.rank("author", k=3):
        print(f"  #{row['id']:<4d} {row['name']:<30s} {row['score']:6.2f}")
    title = "cluster aware heterogeneous network mining"
    print(f"\ncold-start score for {title!r}: "
          f"{engine.score_title(title):.2f} cites/yr")

    # 6. Serve it over HTTP (ephemeral port here; in production:
    #    `repro-serve model.npz --port 8099`).
    server = make_server(engine, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{server.server_address[1]}"
    print(f"\nserving on {base}")

    print("GET  /healthz ->", _get(base, "/healthz"))
    print("GET  /predict?ids=0,1,2 ->", _get(base, "/predict?ids=0,1,2"))
    print("POST /predict {'title': ...} ->",
          _post(base, "/predict", {"title": title}))
    print("POST /rank {'node_type': 'venue', 'k': 2} ->",
          _post(base, "/rank", {"node_type": "venue", "k": 2}))
    metrics = _get(base, "/metrics")
    print(f"GET  /metrics -> {metrics['total_requests']} requests, "
          f"p50 {metrics['endpoints']['/predict']['latency_ms_p50']:.2f} ms, "
          f"cache hit rate {metrics['cache']['hit_rate']:.2f}")

    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


if __name__ == "__main__":
    main()
