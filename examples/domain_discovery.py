"""Latent research-domain discovery with the cluster-aware module.

Trains CATE-HGN, then inspects what the CA module learned: which cluster
each research domain landed in, cluster occupancies per node type, and
the domain purity of paper clusters against the generator's ground truth
(which a real deployment would not have — here it grades the discovery).

Run:  python examples/domain_discovery.py
"""

import numpy as np

from repro.core import CATEHGN, CATEHGNConfig
from repro.data import WorldConfig, make_dblp_full
from repro.hetnet import PAPER, TERM


def main() -> None:
    dataset = make_dblp_full(WorldConfig(num_papers=700, num_authors=150,
                                         seed=4))
    config = CATEHGNConfig(dim=16, attention_heads=2, outer_iters=12,
                           mini_iters=6, lr=0.015, kappa=30, patience=8,
                           seed=0)
    model = CATEHGN(config).fit(dataset)

    print("domain -> learned cluster (via the domain-name anchor term):")
    for d, name in enumerate(dataset.domain_names):
        print(f"  {name:<10s} -> cluster {model.domain_cluster(d, layer=1)}")

    assignments = model.cluster_assignments()
    print("\ncluster occupancy by node type:")
    for node_type, hard in assignments.items():
        counts = np.bincount(hard, minlength=config.num_clusters)
        print(f"  {node_type:<7s} {counts}")

    # Grade paper clusters against the planted domains: majority-domain
    # purity per cluster, weighted by cluster size.
    truth = np.array([p.domain for p in dataset.world.papers])
    hard = assignments[PAPER]
    purities, weights = [], []
    for k in range(config.num_clusters):
        members = truth[hard == k]
        if len(members) == 0:
            continue
        purities.append(np.bincount(members).max() / len(members))
        weights.append(len(members))
    weighted = float(np.average(purities, weights=weights))
    chance = 1.0 / len(dataset.domain_names)
    print(f"\npaper-cluster majority-domain purity: {weighted:.3f} "
          f"(chance {chance:.3f})")

    print("\nmined quality terms per domain (first 8 each):")
    for name, terms in zip(dataset.domain_names, model.term_sets):
        print(f"  {name:<10s} {', '.join(terms[:8])}")


if __name__ == "__main__":
    main()
