"""Dynamic citation trajectories (the paper's Section III-G future work).

Extends the static average-rate prediction to per-year citation
trajectories: an empirical aging profile (rise-peak-decay of citation
histories, estimated from training-period citation links) redistributes
each paper's predicted rate over its first post-publication years.

Run:  python examples/dynamic_citations.py
"""

import numpy as np

from repro.core import CATEHGN, CATEHGNConfig, DynamicCitationModel
from repro.data import WorldConfig, make_dblp_full


def main() -> None:
    dataset = make_dblp_full(WorldConfig(num_papers=600, num_authors=130,
                                         seed=9))
    base = CATEHGN(CATEHGNConfig(dim=16, attention_heads=2, outer_iters=8,
                                 mini_iters=5, lr=0.015, kappa=30,
                                 patience=6, seed=0))
    model = DynamicCitationModel(base, horizon=6)
    model.fit(dataset, fit_base=True)

    profile = model.profile
    print("estimated citation-aging profile (share of citations per "
          "post-publication year):")
    for age, weight in enumerate(profile.weights, start=1):
        print(f"  year +{age}: {'#' * int(round(40 * weight))} {weight:.3f}")

    trajectories = model.predict_trajectories()
    print("\npredicted trajectories for three test papers "
          "(citations per year, years +1..+6):")
    for i in dataset.test_idx[:3]:
        title = " ".join(dataset.world.papers[i].title[:5])
        series = " ".join(f"{v:5.2f}" for v in trajectories[i])
        print(f"  {title:<40s} {series}")

    # Sanity: the trajectory mean recovers the static prediction.
    static = base.predict()
    assert np.allclose(trajectories.mean(axis=1), static, atol=1e-9)
    print("\ntrajectory horizon-means match the static predictions "
          "(consistency check passed)")


if __name__ == "__main__":
    main()
