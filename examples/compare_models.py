"""Mini Table II: compare CATE-HGN against representative baselines.

Trains a text-only model (BERT stand-in), a traditional feature-engineering
model (CPDF), two heterogeneous GNNs (HAN, HGT), and the three HGN-family
variants on one dataset, then prints the ranking.

Run:  python examples/compare_models.py
"""

from repro.baselines import CPDF, HAN, HGT, BERTRegressor, GNNTrainConfig
from repro.data import WorldConfig, make_dblp_full
from repro.eval import evaluate_model, make_cate_variants, render_table


def main() -> None:
    dataset = make_dblp_full(WorldConfig(num_papers=700, num_authors=150,
                                         seed=2))
    print(f"dataset: {dataset.statistics()}\n")

    models = {
        "BERT (text only)": BERTRegressor(),
        "CPDF (features + CART)": CPDF(),
        "HAN": HAN(GNNTrainConfig(dim=32, epochs=50)),
        "HGT": HGT(GNNTrainConfig(dim=32, epochs=50)),
    }
    models.update(make_cate_variants(dim=16, outer_iters=12, mini_iters=6))

    results = []
    for name, model in models.items():
        result = evaluate_model(name, model, dataset)
        results.append((name, result.test_rmse, result.seconds))
        print(f"trained {name:<24s} RMSE={result.test_rmse:.4f} "
              f"({result.seconds:.1f}s)")

    results.sort(key=lambda r: r[1])
    rows = [[name, f"{score:.4f}", f"{secs:.1f}s"]
            for name, score, secs in results]
    print()
    print(render_table(["model", "test RMSE", "fit time"], rows,
                       title="Citation prediction comparison (lower RMSE "
                             "is better)"))


if __name__ == "__main__":
    main()
