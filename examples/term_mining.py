"""Quality-term mining with the text-enhancing (TE) module in isolation.

Shows the TE pipeline without any model training: bootstrap per-domain
term sets from bare domain names via the distributional masked LM (the
pre-trained-BERT stand-in), build TF-IDF paper-term links (Eq. 24), then
run one round of impact-based voting using the training-period citation
record of each term as its impact estimate.

Run:  python examples/term_mining.py
"""

import numpy as np

from repro.core import TEConfig, TextEnhancer
from repro.data import WorldConfig, make_dblp_full


def main() -> None:
    dataset = make_dblp_full(WorldConfig(num_papers=700, num_authors=150,
                                         seed=6))
    enhancer = TextEnhancer(dataset.text, dataset.domain_names,
                            TEConfig(kappa=25))

    print("bootstrapped term sets (MLM masked-slot retrieval, Eq. 23):")
    term_sets = enhancer.bootstrap()
    for name, terms in zip(dataset.domain_names, term_sets):
        print(f"  {name:<10s} {', '.join(terms[:8])}")

    papers, term_ids, weights = enhancer.build_links(
        enhancer.union(term_sets)
    )
    print(f"\nTF-IDF paper-term links: {len(papers)} "
          f"(mean weight {weights.mean():.3f})")

    # Impact proxy without a trained model: mean training-period citations
    # of the papers mentioning each term.
    union = enhancer.union(term_sets)
    train_mask = np.zeros(dataset.num_papers, dtype=bool)
    train_mask[dataset.train_idx] = True
    totals = np.zeros(len(union))
    counts = np.zeros(len(union))
    for p, t in zip(papers, term_ids):
        if train_mask[p]:
            totals[t] += dataset.labels[p]
            counts[t] += 1
    impacts = {term: totals[i] / max(counts[i], 1)
               for i, term in enumerate(union)}

    refined = enhancer.refine(term_sets, impacts)
    print("\nrefined term sets after one round of impact-based voting:")
    for name, terms in zip(dataset.domain_names, refined):
        print(f"  {name:<10s} {', '.join(terms[:8])}")

    # Grade against the generator's planted quality terms.
    all_quality = set().union(*(dataset.world.quality_terms(d)
                                for d in range(len(dataset.domain_names))))
    for label, sets in (("bootstrap", term_sets), ("refined", refined)):
        mined = [t for s in sets for t in s]
        precision = np.mean([t in all_quality for t in mined])
        print(f"\n{label}: {len(mined)} terms, "
              f"{precision:.1%} are planted quality terms")


if __name__ == "__main__":
    main()
