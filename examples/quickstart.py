"""Quickstart: build a publication network, train CATE-HGN, predict citations.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import CATEHGN, CATEHGNConfig
from repro.data import WorldConfig, make_dblp_full
from repro.eval import rmse


def main() -> None:
    # 1. Build a synthetic DBLP-like heterogeneous publication network
    #    (papers, authors, venues, terms; see DESIGN.md for the planted
    #    citation mechanism).
    dataset = make_dblp_full(WorldConfig(num_papers=500, num_authors=120,
                                         seed=1))
    print(f"dataset: {dataset.name} {dataset.statistics()}")
    print(f"splits: {len(dataset.train_idx)} train / "
          f"{len(dataset.val_idx)} val / {len(dataset.test_idx)} test")

    # 2. Train the full CATE-HGN (one-space HGN + cluster-aware module +
    #    text-enhancing module) with a small CPU budget.
    config = CATEHGNConfig(dim=16, attention_heads=2, outer_iters=10,
                           mini_iters=6, lr=0.015, kappa=30, patience=6,
                           seed=0)
    model = CATEHGN(config).fit(dataset)

    # 3. Predict average citations/year for every paper and evaluate on
    #    the temporal test split (papers from 2015-2020).
    predictions = model.predict()
    test = dataset.test_idx
    baseline = np.full(len(test), dataset.labels[dataset.train_idx].mean())
    print(f"\ntest RMSE (CATE-HGN):        "
          f"{rmse(dataset.labels[test], predictions[test]):.4f}")
    print(f"test RMSE (predict-the-mean): "
          f"{rmse(dataset.labels[test], baseline):.4f}")

    # 4. Inspect a few predictions.
    print("\nsample predictions (paper title -> predicted / true cites/yr):")
    for i in test[:5]:
        title = " ".join(dataset.world.papers[i].title[:6])
        print(f"  {title:<45s} {predictions[i]:5.2f} / {dataset.labels[i]:5.2f}")


if __name__ == "__main__":
    main()
